"""Tests for the dataset registry and the transaction-network generator."""

from __future__ import annotations

import pytest

from repro import build_spg
from repro.datasets import (
    DATASETS,
    dataset_names,
    dataset_summary_table,
    generate_transaction_network,
    load_dataset,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_fifteen_datasets_present(self):
        assert len(DATASETS) == 15
        assert dataset_names() == [
            "ps", "ye", "wn", "uk", "sf", "bk", "tw", "bs",
            "gg", "hm", "wt", "lj", "dl", "fr", "hg",
        ]

    @pytest.mark.parametrize("code", ["ps", "wn", "tw", "lj", "hg"])
    def test_proxies_generate_and_are_nonempty(self, code):
        graph = load_dataset(code, scale=0.1)
        assert graph.num_vertices >= 8
        assert graph.num_edges > 0
        assert graph.name == f"{code}-proxy"

    def test_proxies_are_deterministic(self):
        assert load_dataset("ye", scale=0.1) == load_dataset("ye", scale=0.1)

    def test_scale_changes_size(self):
        small = load_dataset("bs", scale=0.1)
        large = load_dataset("bs", scale=0.3)
        assert large.num_vertices > small.num_vertices

    def test_density_ordering_matches_table2(self):
        """Dense proxies (ps, hm) must have higher average degree than sparse ones (tw, wt)."""
        dense = load_dataset("ps", scale=0.2).average_degree()
        sparse = load_dataset("tw", scale=0.2).average_degree()
        assert dense > 4 * sparse

    def test_unknown_code_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("zz")

    def test_bad_scale_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("ps", scale=0.0)

    def test_summary_table_rows(self):
        rows = dataset_summary_table(scale=0.05)
        assert len(rows) == 15
        first = rows[0]
        assert {"code", "real_|V|", "proxy_|V|", "proxy_d_avg"} <= set(first)

    def test_queries_run_on_proxies(self):
        graph = load_dataset("tw", scale=0.1)
        # Just check that an SPG query runs end to end on a proxy.
        source = next(u for u in graph.vertices() if graph.out_degree(u) > 0)
        target = graph.out_neighbors(source)[0]
        result = build_spg(graph, source, target, 4)
        assert result.exact


class TestTransactionNetwork:
    def test_generation_basics(self):
        network = generate_transaction_network(
            num_accounts=100, num_transactions=500, seed=1
        )
        assert network.num_accounts == 100
        assert len(network.transactions) >= 500  # background + ring transactions
        assert len(network.fraud_rings) == 3
        assert network.flagged_edge is not None

    def test_transactions_sorted_by_time(self):
        network = generate_transaction_network(num_accounts=80, num_transactions=300, seed=2)
        times = [txn.timestamp for txn in network.transactions]
        assert times == sorted(times)

    def test_snapshot_time_filtering(self):
        network = generate_transaction_network(num_accounts=80, num_transactions=300, seed=3)
        full = network.snapshot()
        recent = network.snapshot(start_time=25.0)
        assert recent.num_edges <= full.num_edges

    def test_window_around_flag_contains_ring(self):
        network = generate_transaction_network(num_accounts=120, num_transactions=400, seed=4)
        window = network.window_around_flag(7.0)
        ring = network.fraud_rings[0]
        for i, account in enumerate(ring[:-1]):
            assert window.has_edge(account, ring[i + 1])

    def test_case_study_recovers_planted_ring(self):
        """The Section 6.9 workflow: SPG over the time window finds the ring."""
        network = generate_transaction_network(
            num_accounts=200, num_transactions=1000, ring_size=4, seed=5
        )
        payer, payee, _ = network.flagged_edge
        window = network.window_around_flag(7.0)
        result = build_spg(window, payee, payer, 5)
        assert set(network.fraud_rings[0]) <= set(result.vertices) | {payer, payee}

    def test_fraud_accounts_union(self):
        network = generate_transaction_network(num_accounts=100, num_transactions=200, seed=6)
        accounts = network.fraud_accounts()
        assert len(accounts) == sum(len(r) for r in network.fraud_rings)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            generate_transaction_network(num_accounts=5, num_fraud_rings=3, ring_size=4)
        with pytest.raises(DatasetError):
            generate_transaction_network(ring_size=1)

    def test_flag_required_for_window(self):
        network = generate_transaction_network(
            num_accounts=50, num_transactions=100, num_fraud_rings=0, seed=7
        )
        assert network.flagged_edge is None
        with pytest.raises(DatasetError):
            network.window_around_flag(5.0)
