"""Tests for edge labelling and the upper-bound graph (Section 4)."""

from __future__ import annotations

import pytest

from repro.analysis.validate import brute_force_spg
from repro.core.distances import compute_distance_index
from repro.core.essential import propagate_backward, propagate_forward
from repro.core.labeling import compute_upper_bound, label_edge
from repro.core.result import EdgeLabel
from repro.graph.generators import erdos_renyi


def build_upper(graph, source, target, k):
    distances = compute_distance_index(graph, source, target, k)
    forward = propagate_forward(graph, source, target, k, distances=distances)
    backward = propagate_backward(graph, source, target, k, distances=distances)
    return compute_upper_bound(graph, source, target, k, distances, forward, backward)


class TestFigure6Labels:
    """Edge labels for the Figure 1 graph at k = 7 (Figure 6(c) / examples)."""

    @pytest.fixture(autouse=True)
    def _setup(self, figure1):
        self.graph, builder = figure1
        self.id = builder.vertex_id
        self.s, self.t = self.id("s"), self.id("t")
        self.upper = build_upper(self.graph, self.s, self.t, 7)

    def edge(self, a, b):
        return (self.id(a), self.id(b))

    def test_example_4_2_edge_ij_is_in_upper_bound(self):
        assert self.edge("i", "j") in self.upper.edges

    def test_example_4_2_edge_bj_is_failing(self):
        assert self.upper.labels[self.edge("b", "j")] is EdgeLabel.FAILING
        assert self.edge("b", "j") not in self.upper.edges

    def test_counterexample_edge_ba_is_excluded(self):
        """Lemma 3.3's counterexample e(b, a) is not in SPG_7; here it is
        filtered at the latest by verification, but the label must not be
        definite."""
        label = self.upper.labels.get(self.edge("b", "a"), EdgeLabel.FAILING)
        assert label is not EdgeLabel.DEFINITE

    def test_example_4_5_first_hop_edge_definite(self):
        assert self.upper.labels[self.edge("s", "a")] is EdgeLabel.DEFINITE

    def test_example_4_7_second_hop_edge_definite(self):
        assert self.upper.labels[self.edge("a", "i")] is EdgeLabel.DEFINITE

    def test_last_hop_edges_definite(self):
        assert self.upper.labels[self.edge("c", "t")] is EdgeLabel.DEFINITE
        assert self.upper.labels[self.edge("b", "t")] is EdgeLabel.DEFINITE

    def test_departures_and_arrivals_match_figure7(self):
        departures = {self.id(x) for x in ("b", "c", "h", "i")}
        arrivals = {self.id(x) for x in ("a", "c", "h")}
        assert set(self.upper.departures) == departures
        assert set(self.upper.arrivals) == arrivals

    def test_example_5_5_valid_neighbours(self):
        c = self.id("c")
        assert self.upper.departures[c] == [self.id("a")]
        assert self.upper.arrivals[c] == [self.id("b")]


class TestUpperBoundProperties:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_upper_bound_contains_exact_answer(self, seed, k):
        graph = erdos_renyi(11, 2.0, seed=seed)
        source, target = 0, 10
        upper = build_upper(graph, source, target, k)
        exact = brute_force_spg(graph, source, target, k)
        assert exact <= upper.edges

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_theorem_4_8_exact_for_small_k(self, seed, k):
        graph = erdos_renyi(11, 2.0, seed=seed)
        source, target = 0, 10
        upper = build_upper(graph, source, target, k)
        exact = brute_force_spg(graph, source, target, k)
        assert upper.edges == exact

    @pytest.mark.parametrize("seed", range(6))
    def test_definite_edges_are_in_exact_answer(self, seed):
        graph = erdos_renyi(10, 2.2, seed=seed)
        source, target = 0, 9
        for k in (5, 6, 7):
            upper = build_upper(graph, source, target, k)
            exact = brute_force_spg(graph, source, target, k)
            assert upper.definite_edges <= exact

    def test_adjacency_matches_edges(self):
        graph = erdos_renyi(12, 2.0, seed=3)
        upper = build_upper(graph, 0, 11, 5)
        adjacency_edges = {
            (u, v) for u, nbrs in upper.out_adjacency.items() for v in nbrs
        }
        assert adjacency_edges == upper.edges

    def test_labels_partition_candidate_edges(self):
        graph = erdos_renyi(12, 2.0, seed=4)
        upper = build_upper(graph, 0, 11, 5)
        for edge, label in upper.labels.items():
            if label is EdgeLabel.FAILING:
                assert edge not in upper.edges
            elif label is EdgeLabel.DEFINITE:
                assert edge in upper.definite_edges
            else:
                assert edge in upper.undetermined_edges


class TestLabelEdgeUnit:
    def test_direct_edge_is_definite(self):
        graph = erdos_renyi(6, 1.0, seed=0)
        # Force a direct edge.
        from repro.graph.digraph import DiGraph

        graph = DiGraph(3, [(0, 2), (0, 1), (1, 2)])
        forward = propagate_forward(graph, 0, 2, 3, prune=False)
        backward = propagate_backward(graph, 0, 2, 3, prune=False)
        assert label_edge(0, 2, 0, 2, 3, forward, backward) is EdgeLabel.DEFINITE
        assert label_edge(0, 1, 0, 2, 3, forward, backward) is EdgeLabel.DEFINITE
        assert label_edge(1, 2, 0, 2, 3, forward, backward) is EdgeLabel.DEFINITE
