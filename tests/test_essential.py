"""Tests for essential-vertex propagation (Section 3).

The expected values come from the paper's Figure 5(a)/(b): essential vertex
sets ``EV*_l(s, .)`` and ``EV*_l(., t)`` for the Figure 1 graph.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.validate import brute_force_paths
from repro.core.distances import compute_distance_index
from repro.core.essential import propagate_backward, propagate_forward
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi


def definition_essential_vertices(graph, source, vertex, level, excluded):
    """EV*_l straight from Definition 3.1 (intersection over simple paths)."""
    sets = []
    for path in brute_force_paths(graph, source, vertex, level):
        if excluded in path:
            continue
        sets.append(set(path))
    if not sets:
        return None
    result = sets[0]
    for vertex_set in sets[1:]:
        result = result & vertex_set
    return result


class TestFigure5:
    """Exact values printed in Figure 5(a)/(b) of the paper (k = 7)."""

    @pytest.fixture(autouse=True)
    def _setup(self, figure1):
        self.graph, builder = figure1
        self.id = builder.vertex_id
        self.s = self.id("s")
        self.t = self.id("t")
        self.k = 7
        self.forward = propagate_forward(self.graph, self.s, self.t, self.k, prune=False)
        self.backward = propagate_backward(self.graph, self.s, self.t, self.k, prune=False)

    def expect_forward(self, vertex_label, level, expected_labels):
        actual = self.forward.get(self.id(vertex_label), level)
        expected = {self.id(x) for x in expected_labels}
        assert actual == expected, f"EV_{level}(s, {vertex_label})"

    def expect_backward(self, vertex_label, level, expected_labels):
        actual = self.backward.get(self.id(vertex_label), level)
        expected = {self.id(x) for x in expected_labels}
        assert actual == expected, f"EV_{level}({vertex_label}, t)"

    def test_forward_level_1(self):
        self.expect_forward("a", 1, {"s", "a"})
        self.expect_forward("c", 1, {"s", "c"})
        assert self.forward.get(self.id("b"), 1) is None
        assert self.forward.get(self.id("h"), 1) is None

    def test_forward_level_2(self):
        self.expect_forward("b", 2, {"s", "c", "b"})
        self.expect_forward("h", 2, {"s", "a", "h"})
        self.expect_forward("i", 2, {"s", "a", "i"})
        assert self.forward.get(self.id("j"), 2) is None

    def test_forward_level_3(self):
        self.expect_forward("b", 3, {"s", "b"})
        self.expect_forward("j", 3, {"s", "j"})
        self.expect_forward("a", 3, {"s", "a"})

    def test_forward_level_4_and_5(self):
        self.expect_forward("h", 4, {"s", "h"})
        self.expect_forward("c", 4, {"s", "c"})
        self.expect_forward("b", 5, {"s", "b"})

    def test_backward_level_1(self):
        self.expect_backward("b", 1, {"b", "t"})
        self.expect_backward("c", 1, {"c", "t"})
        assert self.backward.get(self.id("a"), 1) is None

    def test_backward_level_2(self):
        self.expect_backward("a", 2, {"a", "c", "t"})
        self.expect_backward("h", 2, {"h", "b", "t"})

    def test_backward_level_3(self):
        self.expect_backward("a", 3, {"a", "t"})
        self.expect_backward("j", 3, {"j", "h", "b", "t"})

    def test_backward_level_4(self):
        self.expect_backward("i", 4, {"i", "j", "h", "b", "t"})

    def test_example_3_2(self):
        """Example 3.2: EV*_2(s, b) = {s, c, b}, EV*_3(s, b) = {s, b}."""
        self.expect_forward("b", 2, {"s", "c", "b"})
        self.expect_forward("b", 3, {"s", "b"})


class TestAgainstDefinition:
    """Propagation must match Definition 3.1 on random graphs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_forward_matches_definition(self, seed):
        graph = erdos_renyi(9, 1.8, seed=seed)
        source, target = 0, 8
        k = 6
        index = propagate_forward(graph, source, target, k, prune=False)
        for vertex in graph.vertices():
            if vertex in (source, target):
                continue
            for level in range(1, k):
                expected = definition_essential_vertices(graph, source, vertex, level, target)
                assert index.get(vertex, level) == (
                    frozenset(expected) if expected is not None else None
                ), (seed, vertex, level)

    @pytest.mark.parametrize("seed", range(8))
    def test_backward_matches_definition(self, seed):
        graph = erdos_renyi(9, 1.8, seed=seed)
        source, target = 0, 8
        k = 6
        index = propagate_backward(graph, source, target, k, prune=False)
        for vertex in graph.vertices():
            if vertex in (source, target):
                continue
            for level in range(1, k):
                expected = definition_essential_vertices(graph, vertex, target, level, source)
                assert index.get(vertex, level) == (
                    frozenset(expected) if expected is not None else None
                ), (seed, vertex, level)


class TestInheritanceFix:
    """The scenario of DESIGN.md: a short and a long route into the same vertex."""

    def test_long_route_intersects_with_short_route(self):
        # s -> x1 -> y  (short)   and   s -> a -> b -> x2 -> y  (long);
        # the target 6 sits behind y so nothing is excluded on the way.
        graph = DiGraph.from_edge_list(
            [(0, 1), (1, 5), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        index = propagate_forward(graph, 0, 6, 7, prune=False)
        # With only the short route known, x1 (=1) is essential.
        assert index.get(5, 2) == frozenset({0, 1, 5})
        # Once the long route arrives at level 4, only s and y remain common;
        # Algorithm 1 as printed would return {0, 2, 3, 4, 5} here.
        assert index.get(5, 4) == frozenset({0, 5})


class TestPruning:
    """Forward-looking pruning never affects the upper bound (Theorem 3.6)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_pruned_sets_are_consistent_where_needed(self, seed):
        graph = erdos_renyi(10, 2.0, seed=seed)
        source, target = 0, 9
        k = 5
        distances = compute_distance_index(graph, source, target, k)
        pruned = propagate_forward(graph, source, target, k, distances=distances, prune=True)
        full = propagate_forward(graph, source, target, k, prune=False)
        # Wherever a pruned entry exists at a level still relevant for some
        # edge (level + dist(u, t) <= k), it must agree with the unpruned run.
        for vertex in pruned.reached_vertices():
            to_target = distances.dist_to_target(vertex)
            for level in range(1, k):
                if level + to_target > k:
                    continue
                assert pruned.get(vertex, level) == full.get(vertex, level)

    def test_pruning_reduces_stored_entries(self):
        graph = erdos_renyi(60, 4.0, seed=3)
        source, target = 0, 59
        k = 5
        distances = compute_distance_index(graph, source, target, k)
        pruned = propagate_forward(graph, source, target, k, distances=distances, prune=True)
        full = propagate_forward(graph, source, target, k, prune=False)
        assert pruned.stored_entries() <= full.stored_entries()


class TestIndexBasics:
    def test_anchor_recorded_at_level_zero(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        index = propagate_forward(graph, 0, 2, 4, prune=False)
        assert index.get(0, 0) == frozenset({0})
        assert index.exists(0, 3)
        assert index.first_level(0) == 0

    def test_unreached_vertex_has_no_sets(self):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        index = propagate_forward(graph, 0, 3, 4, prune=False)
        assert index.get(2, 3) is None
        assert not index.exists(2, 3)
        assert index.first_level(2) is None

    def test_excluded_vertex_is_never_reached(self):
        # All paths to 2 go through the excluded target 1.
        graph = DiGraph(3, [(0, 1), (1, 2)])
        index = propagate_forward(graph, 0, 1, 4, prune=False)
        assert index.get(2, 3) is None

    def test_space_meter_records_allocations(self):
        graph = erdos_renyi(20, 2.0, seed=1)
        meter = SpaceMeter()
        propagate_forward(graph, 0, 19, 4, prune=False, space=meter)
        assert meter.peak > 0

    def test_repr_mentions_direction(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        index = propagate_forward(graph, 0, 2, 3, prune=False)
        assert "forward" in repr(index)
