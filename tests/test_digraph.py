"""Unit tests for the DiGraph substrate."""

import pytest

from repro.exceptions import EdgeError, GraphError, VertexError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_basic_counts(self):
        graph = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_self_loops_are_dropped(self):
        graph = DiGraph(3, [(0, 0), (0, 1), (2, 2)])
        assert graph.num_edges == 1
        assert not graph.has_edge(0, 0)

    def test_duplicate_edges_collapse(self):
        graph = DiGraph(3, [(0, 1), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph(2, [(0, 5)])

    def test_from_edge_list_infers_size(self):
        graph = DiGraph.from_edge_list([(0, 4), (4, 2)])
        assert graph.num_vertices == 5
        assert graph.num_edges == 2

    def test_from_edge_list_rejects_negative_ids(self):
        with pytest.raises(EdgeError):
            DiGraph.from_edge_list([(-1, 0)])

    def test_empty_constructor(self):
        graph = DiGraph.empty(4)
        assert graph.num_vertices == 4
        assert graph.num_edges == 0


class TestNeighborhoods:
    def test_out_and_in_neighbors(self):
        graph = DiGraph(4, [(0, 1), (0, 2), (3, 1)])
        assert sorted(graph.out_neighbors(0)) == [1, 2]
        assert sorted(graph.in_neighbors(1)) == [0, 3]
        assert graph.out_degree(0) == 2
        assert graph.in_degree(1) == 2
        assert graph.degree(0) == 2

    def test_max_and_average_degree(self):
        graph = DiGraph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert graph.max_degree() == 3
        assert graph.average_degree() == pytest.approx(1.0)

    def test_average_degree_empty_graph(self):
        assert DiGraph(0).average_degree() == 0.0


class TestMembership:
    def test_has_edge_and_contains(self):
        graph = DiGraph(3, [(0, 1)])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert (0, 1) in graph
        assert 2 in graph
        assert 5 not in graph
        assert "x" not in graph

    def test_check_vertex_raises(self):
        graph = DiGraph(2)
        graph.check_vertex(1)
        with pytest.raises(VertexError):
            graph.check_vertex(2)


class TestDerivedGraphs:
    def test_reverse(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        reverse = graph.reverse()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(2, 1)
        assert reverse.num_edges == graph.num_edges
        assert sorted(reverse.out_neighbors(2)) == [1]

    def test_reverse_twice_is_identity(self):
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert graph.reverse().reverse() == graph

    def test_copy_is_equal_but_distinct(self):
        graph = DiGraph(3, [(0, 1)])
        clone = graph.copy()
        assert clone == graph
        assert clone is not graph

    def test_equality_considers_vertex_count(self):
        assert DiGraph(3, [(0, 1)]) != DiGraph(4, [(0, 1)])


class TestIterationAndExport:
    def test_edges_iteration_matches_edge_set(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = DiGraph(3, edges)
        assert set(graph.edges()) == set(edges)
        assert graph.edge_set() == set(edges)

    def test_to_edge_list_sorted(self):
        graph = DiGraph(3, [(2, 0), (0, 1)])
        assert graph.to_edge_list() == [(0, 1), (2, 0)]

    def test_to_adjacency_dict(self):
        graph = DiGraph(3, [(0, 1), (0, 2)])
        adjacency = graph.to_adjacency_dict()
        assert sorted(adjacency[0]) == [1, 2]
        assert adjacency[1] == []

    def test_len_and_repr(self):
        graph = DiGraph(3, [(0, 1)], name="tiny")
        assert len(graph) == 3
        assert "tiny" in repr(graph)
