"""Cross-backend differential and stress harness for the executor layer.

Every executor backend (``serial`` / ``thread`` / ``process`` / ``async``)
must be *answer-identical*: the same workload through the same engine
configuration yields the same :class:`~repro.service.BatchReport`, outcome
by outcome, error by error, whatever the scheduling.  The ``backend``
fixture parametrises the whole harness over all four backends so any new
backend is automatically held to the same contract; the differential tests
then compare each backend's canonicalised report against the serial
reference.

Also covered here, per the executor-parallelism PR: concurrency stress
(thread hammering, overlapping async batches, the scratch-pool no-sharing
guard), pickling round trips for everything that crosses the process
boundary (``DiGraph`` with its CSR views, configs, outcomes), and the
affinity-aware ``default_worker_count``.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import random
import threading
import time

import pytest

from repro import DiGraph, EVEConfig, SPGEngine, build_spg
from repro.core.result import SimplePathGraphResult
from repro.graph.generators import erdos_renyi, power_law_cluster
from repro.queries.workload import random_reachable_queries
from repro.service import (
    BACKEND_ENV_VAR,
    EXECUTOR_BACKENDS,
    Call,
    EngineConfig,
    ProcessBackend,
    ScratchPool,
    TaskError,
    create_backend,
    default_worker_count,
    resolve_backend_name,
    run_tasks,
    run_tasks_async,
)

pytestmark = pytest.mark.filterwarnings(
    # Python 3.12+ warns about fork()-based pools in multi-threaded parents;
    # the harness is exactly the place that exercises that combination.
    "ignore::DeprecationWarning"
)


# ----------------------------------------------------------------------
# Module-level task functions (the process backend cannot ship closures)
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x

def _boom(message: str) -> None:
    raise ValueError(message)


def _return_exception() -> ValueError:
    return ValueError("returned, not raised")


def _sleepy_identity(x: int) -> int:
    time.sleep(0.001)
    return x


def canonical_outcome(outcome) -> tuple:
    """One outcome, stripped of timing (the only legitimately varying field)."""
    return (
        outcome.source,
        outcome.target,
        outcome.k,
        outcome.ok,
        outcome.error,
        outcome.cached,
        outcome.reused_backward,
        sorted(outcome.edges),
        sorted(outcome.result.upper_bound_edges) if outcome.result else None,
        sorted(outcome.result.labels.items()) if outcome.result else None,
        outcome.result.exact if outcome.result else None,
    )


def canonical_report(report) -> dict:
    """A backend-independent view of a :class:`BatchReport`."""
    return {
        "outcomes": [canonical_outcome(outcome) for outcome in report.outcomes],
        "planned_groups": report.planned_groups,
        "shared_groups": report.shared_groups,
        "reused_backward_passes": report.reused_backward_passes,
        "cache_hits": report.cache_hits,
        "errors": report.errors,
    }


def random_workload(seed: int) -> tuple:
    """A randomized (graph, queries) pair mixing good, bad and duplicate queries."""
    rng = random.Random(seed)
    if seed % 2:
        graph = erdos_renyi(26 + seed % 7, 2.0 + (seed % 3) * 0.5, seed=seed)
    else:
        graph = power_law_cluster(24 + seed % 9, 2, seed=seed)
    n = graph.num_vertices
    queries: list = []
    for _ in range(rng.randint(12, 24)):
        s, t = rng.sample(range(n), 2)
        queries.append((s, t, rng.choice((2, 3, 4, 5))))
    # Duplicates (in-batch dedup) and target-grouped repeats (shared passes).
    queries.extend(rng.choices(queries, k=4))
    hub = rng.randrange(n)
    queries.extend(
        (s, hub, 4) for s in rng.sample(range(n), 4) if s != hub
    )
    return graph, queries


#: (position-aligned) malformed / failing queries and the error text each
#: must surface, used by the injected-error differential test.
BAD_QUERIES = [
    ((5, 5, 3), "distinct"),          # s == t
    ((10_000, 1, 3), "vertex"),       # unknown vertex
    ((0, 1, -2), "k must be >= 1"),   # bad hop budget
    ((0, 1), "triples"),              # malformed tuple
    ({"s": 0, "t": 1, "k": 2}, "source/target/k"),  # malformed mapping
]


@pytest.fixture(params=EXECUTOR_BACKENDS)
def backend(request) -> str:
    """Run the test once per executor backend."""
    return request.param


def make_engine(graph, backend_name: str, **kwargs) -> SPGEngine:
    kwargs.setdefault("max_workers", 2)
    return SPGEngine(graph, executor_backend=backend_name, **kwargs)


# ----------------------------------------------------------------------
# Executor-level contract (run_tasks / run_tasks_async across backends)
# ----------------------------------------------------------------------
class TestExecutorContract:
    TASKS = (
        [Call(_square, (i,)) for i in range(8)]
        + [Call(_boom, ("kaboom-4",))]
        + [Call(_sleepy_identity, (i,)) for i in range(3)]
    )
    EXPECTED = [i * i for i in range(8)] + ["<error>"] + list(range(3))

    def _check(self, results) -> None:
        assert len(results) == len(self.EXPECTED)
        for got, want in zip(results, self.EXPECTED):
            if want == "<error>":
                assert isinstance(got, TaskError)
                assert got.message == "ValueError: kaboom-4"
            else:
                assert got == want

    def test_results_identical_across_backends(self, backend):
        self._check(run_tasks(self.TASKS, max_workers=3, backend=backend))

    def test_async_results_identical_across_backends(self, backend):
        results = asyncio.run(
            run_tasks_async(self.TASKS, max_workers=3, backend=backend)
        )
        self._check(results)

    def test_backend_instance_is_reused_not_closed(self, backend):
        with create_backend(backend, 2) as instance:
            first = run_tasks(self.TASKS, backend=instance)
            second = run_tasks(self.TASKS, backend=instance)
            self._check(first)
            self._check(second)

    def test_empty_task_list(self, backend):
        assert run_tasks([], backend=backend) == []

    def test_returned_exception_is_a_result_not_a_task_error(self, backend):
        # A task *returning* an exception instance is a legitimate result;
        # only raising must produce TaskError — on the sync and async paths
        # alike.
        tasks = [Call(_return_exception), Call(_boom, ("raised",))]
        for results in (
            run_tasks(tasks, max_workers=2, backend=backend),
            asyncio.run(run_tasks_async(tasks, max_workers=2, backend=backend)),
        ):
            assert isinstance(results[0], ValueError)
            assert str(results[0]) == "returned, not raised"
            assert isinstance(results[1], TaskError)

    def test_process_backend_isolates_unpicklable_tasks(self):
        # Closures cannot cross the process boundary; they must degrade to
        # TaskError entries, not crash the batch (or the pool).
        with create_backend("process", 2) as instance:
            results = instance.run([Call(_square, (3,)), lambda: 1])
            assert results[0] == 9
            assert isinstance(results[1], TaskError)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            run_tasks([Call(_square, (1,))], backend="gpu")
        with pytest.raises(ValueError, match="serial"):
            resolve_backend_name("gpu")

    def test_env_var_selects_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        assert resolve_backend_name(None) == "serial"
        monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_backend_name(None)
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert resolve_backend_name(None) == "thread"


# ----------------------------------------------------------------------
# Engine-level differential tests
# ----------------------------------------------------------------------
class TestDifferentialBatches:
    def test_randomized_workloads_identical_across_backends(self, backend):
        for seed in (1, 2, 3):
            graph, queries = random_workload(seed)
            with make_engine(graph, "serial") as reference_engine:
                reference = canonical_report(reference_engine.run_batch(queries))
            with make_engine(graph, backend) as engine:
                assert engine.executor_backend == backend
                first = engine.run_batch(queries)
                # Second pass: same workload again, now through the cache —
                # hit accounting must match across backends too.
                second = engine.run_batch(queries)
            assert canonical_report(first) == reference
            with make_engine(graph, "serial") as reference_engine:
                reference_engine.run_batch(queries)
                reference_second = canonical_report(reference_engine.run_batch(queries))
            assert canonical_report(second) == reference_second

    def test_results_match_cold_build_spg(self, backend):
        graph, queries = random_workload(4)
        with make_engine(graph, backend) as engine:
            report = engine.run_batch(queries)
        for outcome, query in zip(report, queries):
            if outcome.ok:
                reference = build_spg(graph, *query)
                assert outcome.edges == reference.edges
                assert outcome.result.upper_bound_edges == reference.upper_bound_edges

    def test_injected_errors_surface_at_right_index(self, backend):
        graph = erdos_renyi(30, 2.5, seed=9)
        good = random_reachable_queries(graph, 4, 6, seed=9).as_batch()
        # Interleave bad queries at deterministic positions.
        queries: list = []
        bad_positions = {}
        for index, entry in enumerate(good):
            queries.append(entry)
            bad = BAD_QUERIES[index % len(BAD_QUERIES)]
            bad_positions[len(queries)] = bad[1]
            queries.append(bad[0])
        with make_engine(graph, backend) as engine:
            report = engine.run_batch(queries)
        assert len(report) == len(queries)
        assert report.errors == len(bad_positions)
        for index, outcome in enumerate(report):
            if index in bad_positions:
                assert not outcome.ok
                assert bad_positions[index] in outcome.error
            else:
                assert outcome.ok, outcome.error
                assert outcome.edges == build_spg(graph, *queries[index]).edges

    def test_streams_identical_across_backends(self, backend):
        graph, queries = random_workload(5)
        with make_engine(graph, "serial") as reference_engine:
            reference = [
                canonical_outcome(outcome)
                for outcome in reference_engine.run_stream(iter(queries), batch_size=5)
            ]
        with make_engine(graph, backend) as engine:
            outcomes = [
                canonical_outcome(outcome)
                for outcome in engine.run_stream(iter(queries), batch_size=5)
            ]
        assert outcomes == reference

    def test_async_batches_identical_across_backends(self, backend):
        graph, queries = random_workload(6)
        with make_engine(graph, "serial") as reference_engine:
            reference = canonical_report(reference_engine.run_batch(queries))

        async def serve():
            with make_engine(graph, backend) as engine:
                return await engine.run_batch_async(queries)

        assert canonical_report(asyncio.run(serve())) == reference


# ----------------------------------------------------------------------
# Backend lifecycle on the engine
# ----------------------------------------------------------------------
class TestBackendLifecycle:
    def test_pool_stays_warm_across_batches(self, backend):
        graph, queries = random_workload(7)
        with make_engine(graph, backend) as engine:
            engine.run_batch(queries)
            warm = engine._backend
            engine.run_batch(queries)
            assert engine._backend is warm  # reused, not rebuilt

    def test_close_is_idempotent_and_engine_recovers(self, backend):
        graph, queries = random_workload(8)
        engine = make_engine(graph, backend)
        first = canonical_report(engine.run_batch(queries))
        engine.close()
        engine.close()
        # The engine lazily rebuilds its backend after close().
        engine.clear_cache()
        assert canonical_report(engine.run_batch(queries)) == first
        engine.close()

    def test_graph_swap_rebuilds_process_pool(self):
        first_graph = erdos_renyi(24, 2.5, seed=10)
        second_graph = erdos_renyi(24, 2.5, seed=11)
        queries = random_reachable_queries(first_graph, 4, 5, seed=10).as_batch()
        with make_engine(first_graph, "process") as engine:
            engine.run_batch(queries)
            old_backend = engine._backend
            engine.set_graph(second_graph)
            report = engine.run_batch(queries)
            assert engine._backend is not old_backend
            for outcome, query in zip(report, queries):
                if outcome.ok:
                    assert outcome.edges == build_spg(second_graph, *query).edges

    def test_equal_graph_swap_keeps_process_pool_warm(self):
        graph = erdos_renyi(24, 2.5, seed=12)
        queries = random_reachable_queries(graph, 4, 4, seed=12).as_batch()
        with make_engine(graph, "process") as engine:
            engine.run_batch(queries)
            warm = engine._backend
            engine.set_graph(graph.copy(name="same-content"))
            report = engine.run_batch(queries)
            assert engine._backend is warm
            assert report.cache_hits == len(queries)

    def test_broken_process_pool_is_rebuilt(self):
        graph = erdos_renyi(20, 2.0, seed=13)
        queries = random_reachable_queries(graph, 3, 3, seed=13).as_batch()
        with make_engine(graph, "process") as engine:
            first = canonical_report(engine.run_batch(queries))
            engine._backend._broken = True  # simulate a worker death
            engine.clear_cache()
            assert canonical_report(engine.run_batch(queries)) == first

    def test_stream_width_override_builds_one_transient_backend(self, backend):
        # A per-stream width override must not rebuild a pool per chunk
        # (for the process backend that would respawn workers and re-ship
        # the graph every batch_size queries).
        graph, queries = random_workload(10)
        engine = make_engine(graph, backend)
        builds = []
        original = engine._build_backend

        def counting_build(max_workers, g=None):
            builds.append(max_workers)
            return original(max_workers, g)

        engine._build_backend = counting_build
        try:
            outcomes = list(engine.run_stream(iter(queries), batch_size=4, max_workers=1))
        finally:
            engine.close()
        assert len(outcomes) == len(queries)
        assert builds.count(1) == 1, builds

    def test_stream_width_override_survives_graph_swap(self):
        # The stream's transient process backend must re-adapt to a
        # mid-stream graph swap (workers pinned to the old graph would
        # otherwise fail the fingerprint check for the rest of the stream).
        first_graph = erdos_renyi(24, 2.5, seed=30)
        second_graph = erdos_renyi(24, 2.5, seed=31)
        queries = random_reachable_queries(first_graph, 3, 6, seed=30).as_batch()
        engine = make_engine(first_graph, "process", cache_size=0)

        def feed():
            for query in queries[:3]:
                yield query
            engine.set_graph(second_graph)
            for query in queries[3:]:
                yield query

        try:
            outcomes = list(engine.run_stream(feed(), batch_size=3, max_workers=1))
        finally:
            engine.close()
        for index, (outcome, query) in enumerate(zip(outcomes, queries)):
            graph = first_graph if index < 3 else second_graph
            assert outcome.ok, (index, outcome.error)
            assert outcome.edges == build_spg(graph, *query).edges

    def test_explicit_max_workers_uses_transient_backend(self, backend):
        graph, queries = random_workload(9)
        with make_engine(graph, backend) as engine:
            baseline = canonical_report(engine.run_batch(queries))
            engine.clear_cache()
            override = canonical_report(engine.run_batch(queries, max_workers=1))
        assert override == baseline


# ----------------------------------------------------------------------
# Concurrency stress
# ----------------------------------------------------------------------
class TestConcurrencyStress:
    def test_thread_hammer_consistent_stats_and_answers(self):
        graph = power_law_cluster(36, 2, seed=14)
        workloads = [
            random_reachable_queries(graph, 4, 6, seed=seed).as_batch()
            for seed in range(8)
        ]
        references = {
            seed: [sorted(build_spg(graph, *q).edges) for q in workload]
            for seed, workload in enumerate(workloads)
        }
        engine = SPGEngine(graph, executor_backend="thread", max_workers=4)
        failures: list = []

        def hammer(seed: int) -> None:
            try:
                for _ in range(3):
                    report = engine.run_batch(workloads[seed])
                    got = [sorted(outcome.edges) for outcome in report]
                    assert got == references[seed]
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append((seed, exc))

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures

        snapshot = engine.stats_snapshot()
        total = sum(len(w) for w in workloads) * 3
        assert snapshot["queries_served"] == total
        assert snapshot["cache_hits"] + snapshot["cache_misses"] == total
        assert snapshot["batches_served"] == 24
        # Every computed query borrowed exactly one scratch; nothing leaked.
        assert (
            snapshot["scratch_allocations"] + snapshot["scratch_reuses"]
            == snapshot["cache_misses"]
        )
        engine.close()

    def test_scratch_pool_never_shares_in_flight_buffers(self):
        pool = ScratchPool()
        in_use: set = set()
        guard = threading.Lock()
        violations: list = []

        def worker() -> None:
            for _ in range(150):
                with pool.borrow() as scratch:
                    with guard:
                        if id(scratch) in in_use:
                            violations.append(id(scratch))
                        in_use.add(id(scratch))
                    time.sleep(0.0002)
                    with guard:
                        in_use.discard(id(scratch))

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not violations
        # The pool never grows past the peak number of concurrent borrowers.
        assert len(pool) <= 12
        assert pool.allocations + pool.reuses == 12 * 150

    def test_overlapping_async_batches(self, backend):
        graph = power_law_cluster(32, 2, seed=15)
        workloads = [
            random_reachable_queries(graph, 4, 5, seed=seed).as_batch()
            for seed in range(5)
        ]
        references = [
            [sorted(build_spg(graph, *q).edges) for q in workload]
            for workload in workloads
        ]

        async def serve():
            with make_engine(graph, backend, cache_size=0) as engine:
                reports = await asyncio.gather(
                    *(engine.run_batch_async(workload) for workload in workloads)
                )
                return reports, engine.stats_snapshot()

        reports, snapshot = asyncio.run(serve())
        for report, reference in zip(reports, references):
            assert [sorted(outcome.edges) for outcome in report] == reference
        assert snapshot["queries_served"] == sum(len(w) for w in workloads)
        assert snapshot["errors"] == 0

    def test_astream_accepts_async_iterables(self):
        graph = erdos_renyi(25, 2.5, seed=16)
        queries = random_reachable_queries(graph, 4, 9, seed=16).as_batch()

        async def feed():
            for query in queries:
                await asyncio.sleep(0)
                yield query

        async def consume():
            with make_engine(graph, "async") as engine:
                return [outcome async for outcome in engine.astream(feed(), batch_size=4)]

        outcomes = asyncio.run(consume())
        assert [(o.source, o.target) for o in outcomes] == [
            (q[0], q[1]) for q in queries
        ]
        for outcome, query in zip(outcomes, queries):
            assert outcome.edges == build_spg(graph, *query).edges


# ----------------------------------------------------------------------
# Pickling round trips (everything that crosses the process boundary)
# ----------------------------------------------------------------------
class TestPickling:
    def _check_graph_round_trip(self, graph: DiGraph) -> DiGraph:
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert clone.name == graph.name
        assert clone.num_edges == graph.num_edges
        assert clone.fingerprint() == graph.fingerprint()
        assert clone.csr() == graph.csr()
        assert clone.csr_reverse() == graph.csr_reverse()
        assert clone.max_degree() == graph.max_degree()
        for u in graph.vertices():
            assert list(clone.out_neighbors(u)) == list(graph.out_neighbors(u))
            assert list(clone.in_neighbors(u)) == list(graph.in_neighbors(u))
        return clone

    def test_digraph_round_trip_cold_and_warm(self):
        graph = power_law_cluster(28, 2, seed=17)
        # Cold: nothing cached yet — the CSR views are built at pickle time
        # (a worker needs them anyway), the fingerprint on demand.
        self._check_graph_round_trip(power_law_cluster(28, 2, seed=17))
        # Warm: CSR views and fingerprint carried through the pickle.
        graph.csr()
        graph.csr_reverse()
        graph.fingerprint()
        graph.max_degree()
        clone = self._check_graph_round_trip(graph)
        s, t = 0, graph.num_vertices - 1
        assert build_spg(clone, s, t, 4).edges == build_spg(graph, s, t, 4).edges

    def test_reversed_graph_round_trip(self):
        graph = erdos_renyi(22, 2.5, seed=18)
        graph.csr()
        self._check_graph_round_trip(graph.reverse())

    def test_worker_cannot_desync_from_parent_fingerprint(self):
        # The fingerprint is the engine's graph identity: a pickled copy must
        # carry it verbatim so the process worker's staleness check is sound.
        graph = erdos_renyi(20, 2.0, seed=19)
        fingerprint = graph.fingerprint()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.fingerprint() == fingerprint
        # And a *different* graph can never alias it.
        other = erdos_renyi(20, 2.0, seed=20)
        assert pickle.loads(pickle.dumps(other)).fingerprint() != fingerprint

    def test_engine_config_round_trip(self):
        config = EngineConfig(
            strategy="single",
            verify=False,
            cache_size=7,
            max_workers=3,
            executor_backend="process",
        )
        assert pickle.loads(pickle.dumps(config)) == config
        eve_config = EVEConfig(distance_strategy="bidirectional", verify=False)
        assert pickle.loads(pickle.dumps(eve_config)) == eve_config

    def test_query_outcome_round_trip(self, diamond_graph):
        with SPGEngine(diamond_graph, executor_backend="serial") as engine:
            outcome = engine.run_batch([(0, 3, 2), (0, 0, 2)]).outcomes
        ok_clone = pickle.loads(pickle.dumps(outcome[0]))
        assert ok_clone.ok
        assert ok_clone.edges == outcome[0].edges
        assert isinstance(ok_clone.result, SimplePathGraphResult)
        assert ok_clone.result.labels == outcome[0].result.labels
        err_clone = pickle.loads(pickle.dumps(outcome[1]))
        assert not err_clone.ok
        assert err_clone.error == outcome[1].error

    def test_task_error_round_trip(self):
        error = TaskError(ValueError("boom"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.message == error.message


# ----------------------------------------------------------------------
# default_worker_count (CPU affinity)
# ----------------------------------------------------------------------
class TestDefaultWorkerCount:
    def test_respects_cpu_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_worker_count() == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert default_worker_count() == 6

    def test_caps_and_floors(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(128)), raising=False)
        assert default_worker_count() == 32
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_worker_count() == 1


# ----------------------------------------------------------------------
# Process-backend specifics
# ----------------------------------------------------------------------
class TestProcessBackend:
    def test_worker_initialisation_is_one_time(self):
        # Two batches through one engine reuse the same warm pool: worker
        # initialisation (graph transfer) happens once, not per batch.
        graph = erdos_renyi(24, 2.5, seed=21)
        queries = random_reachable_queries(graph, 4, 4, seed=21).as_batch()
        with make_engine(graph, "process", cache_size=0) as engine:
            engine.run_batch(queries)
            pool = engine._backend._pool
            engine.run_batch(queries)
            assert engine._backend._pool is pool

    def test_process_backend_repr_and_broken_flag(self):
        backend = ProcessBackend(2)
        assert "broken=False" in repr(backend)
        assert not backend.broken
        backend.close()
