"""Cross-module integration tests.

These tests exercise the library the way the experiment harness and the
examples do: dataset proxies -> query workloads -> several algorithms ->
metrics, asserting that every component agrees with every other on the same
queries.
"""

from __future__ import annotations

import pytest

from repro import EVE, build_spg
from repro.analysis.metrics import coverage_ratio, redundant_ratio
from repro.analysis.validate import brute_force_spg
from repro.datasets import load_dataset
from repro.enumeration import BCDFS, JoinEnumerator, PathEnum
from repro.enumeration.spg_via_enumeration import EnumerationSPGBuilder
from repro.khsq import KHSQPlus
from repro.queries import random_reachable_queries
from repro.viz import result_to_dot


@pytest.fixture(scope="module")
def proxy_graph():
    """A small but non-trivial dataset proxy shared by the tests below."""
    return load_dataset("ye", scale=0.08, seed=123)


@pytest.fixture(scope="module")
def workload(proxy_graph):
    return random_reachable_queries(proxy_graph, 5, 4, seed=21)


class TestAlgorithmsAgreeOnProxies:
    def test_eve_vs_enumeration_baselines(self, proxy_graph, workload):
        eve = EVE(proxy_graph)
        for query in workload:
            expected = eve.query(query.source, query.target, query.k).edges
            for enumerator_class in (JoinEnumerator, PathEnum, BCDFS):
                builder = EnumerationSPGBuilder(proxy_graph, enumerator_class)
                result = builder.query(query.source, query.target, query.k)
                assert result.edges == expected, enumerator_class.__name__

    def test_eve_on_khsq_subgraph_gives_same_answer(self, proxy_graph, workload):
        """Restricting EVE to G^k_st must not change the result."""
        khsq = KHSQPlus(proxy_graph)
        eve_full = EVE(proxy_graph)
        for query in workload:
            subgraph = khsq.query(query.source, query.target, query.k).to_graph(proxy_graph)
            eve_restricted = EVE(subgraph)
            full = eve_full.query(query.source, query.target, query.k).edges
            restricted = eve_restricted.query(query.source, query.target, query.k).edges
            assert full == restricted

    def test_enumeration_on_spg_returns_all_paths(self, proxy_graph, workload):
        """PathEnum restricted to SPG_k must find exactly the same paths."""
        eve = EVE(proxy_graph)
        for query in workload:
            full_paths = sorted(PathEnum(proxy_graph).enumerate(
                query.source, query.target, query.k
            ).paths)
            spg = eve.query(query.source, query.target, query.k).to_graph(proxy_graph)
            restricted_paths = sorted(PathEnum(spg).enumerate(
                query.source, query.target, query.k
            ).paths)
            assert full_paths == restricted_paths


class TestMetricsOnProxies:
    def test_ratios_are_consistent(self, proxy_graph, workload):
        eve = EVE(proxy_graph)
        for query in workload:
            result = eve.query(query.source, query.target, query.k)
            r_c = coverage_ratio(result.num_edges, proxy_graph.num_edges)
            r_d = redundant_ratio(result.num_upper_bound_edges, result.num_edges)
            assert 0.0 <= r_c <= 1.0
            assert r_d >= 0.0
            assert result.coverage_ratio(proxy_graph) == pytest.approx(r_c)
            assert result.redundant_ratio() == pytest.approx(r_d)

    def test_small_graph_oracle_agreement(self):
        graph = load_dataset("tw", scale=0.03, seed=5)
        workload = random_reachable_queries(graph, 4, 3, seed=2)
        for query in workload:
            result = build_spg(graph, query.source, query.target, query.k)
            assert result.edges == brute_force_spg(
                graph, query.source, query.target, query.k
            )


class TestEndToEndRendering:
    def test_dot_export_of_proxy_query(self, proxy_graph, workload):
        query = workload.queries[0]
        result = build_spg(proxy_graph, query.source, query.target, query.k)
        dot = result_to_dot(result, proxy_graph)
        assert dot.startswith("digraph")
        # Every answer edge appears in the DOT output.
        for u, v in result.edges:
            assert f"v{u} -> v{v}" in dot
