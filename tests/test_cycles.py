"""Tests for hop-constrained cycle graphs and the fraud screener."""

from __future__ import annotations

import pytest

from repro.analysis.validate import brute_force_spg, check_path
from repro.cycles import FraudScreener, constrained_cycle_graph, constrained_cycles
from repro.datasets.transaction import generate_transaction_network
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph as ring_generator
from repro.graph.generators import erdos_renyi


class TestCycleGraph:
    def test_single_ring(self):
        ring = ring_generator(5)
        result = constrained_cycle_graph(ring, (4, 0), 5)
        assert result.has_cycles
        assert result.edges == set(ring.edges())
        assert result.vertices == set(range(5))

    def test_ring_too_long_for_budget(self):
        ring = ring_generator(5)
        result = constrained_cycle_graph(ring, (4, 0), 4)
        assert not result.has_cycles
        assert result.edges == set()

    def test_two_cycle(self):
        graph = DiGraph(2, [(0, 1), (1, 0)])
        result = constrained_cycle_graph(graph, (1, 0), 2)
        assert result.edges == {(0, 1), (1, 0)}

    def test_matches_spg_plus_anchor(self):
        graph = erdos_renyi(12, 2.5, seed=3)
        edges = list(graph.edges())
        anchor = edges[0]
        tail, head = anchor
        result = constrained_cycle_graph(graph, anchor, 5)
        expected = brute_force_spg(graph, head, tail, 4)
        if expected:
            expected = expected | {anchor}
        assert result.edges == expected

    def test_invalid_inputs(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        with pytest.raises(QueryError):
            constrained_cycle_graph(graph, (2, 0), 4)     # missing edge
        with pytest.raises(QueryError):
            constrained_cycle_graph(graph, (0, 1), 1)     # budget too small

    def test_to_graph(self):
        ring = ring_generator(4)
        result = constrained_cycle_graph(ring, (3, 0), 4)
        subgraph = result.to_graph(ring)
        assert set(subgraph.edges()) == result.edges


class TestCycleEnumeration:
    def test_ring_has_exactly_one_cycle(self):
        ring = ring_generator(4)
        cycles = list(constrained_cycles(ring, (3, 0), 4))
        assert cycles == [(0, 1, 2, 3)]

    def test_cycles_are_valid_paths(self):
        graph = erdos_renyi(10, 2.5, seed=6)
        anchor = next(iter(graph.edges()))
        tail, head = anchor
        for cycle in constrained_cycles(graph, anchor, 5):
            assert check_path(graph, cycle, head, tail, 4)

    def test_no_cycles_yields_nothing(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        assert list(constrained_cycles(graph, (0, 1), 3)) == []


class TestFraudScreener:
    @pytest.fixture()
    def network(self):
        return generate_transaction_network(
            num_accounts=150, num_transactions=600, num_fraud_rings=2, ring_size=4, seed=9
        )

    def test_flagged_edge_is_detected(self, network):
        screener = FraudScreener(network, max_cycle_length=6, window_days=7.0)
        payer, payee, timestamp = network.flagged_edge
        finding = screener.screen_transaction(
            type(network.transactions[0])(payer, payee, timestamp)
        )
        assert finding is not None
        assert set(network.fraud_rings[0]) <= set(finding.involved_accounts)

    def test_screen_recent_finds_planted_rings(self, network):
        screener = FraudScreener(network, max_cycle_length=6, window_days=7.0)
        report = screener.screen_recent(since=27.0)
        assert report.screened > 0
        assert report.num_suspicious >= 1
        precision, recall = report.precision_recall(network.fraud_accounts())
        assert recall > 0.0

    def test_limit_caps_work(self, network):
        screener = FraudScreener(network, max_cycle_length=5, window_days=7.0)
        report = screener.screen_recent(limit=3)
        assert report.screened == 3

    def test_empty_ground_truth(self, network):
        screener = FraudScreener(network, max_cycle_length=5, window_days=7.0)
        report = screener.screen_recent(limit=1)
        precision, recall = report.precision_recall(set())
        assert recall == 0.0

    def test_invalid_parameters(self, network):
        with pytest.raises(QueryError):
            FraudScreener(network, max_cycle_length=1)
        with pytest.raises(QueryError):
            FraudScreener(network, window_days=0.0)
