"""Sharded-vs-whole differential harness, partitioner invariants, shm lifecycle.

Three contracts are enforced here:

1. **Partitioner invariants** (`repro.graph.partition`): every vertex in
   exactly one shard; every edge either local to exactly one shard or in
   exactly one cut table; shard fingerprints change exactly when the
   parent fingerprint or the shard count changes.
2. **Answer identity** (`repro.service.shard.ShardedSPGEngine`): randomized
   graphs and workloads — including injected per-query errors, duplicate
   queries, cache revisits, streams, async batches and graph-swap
   staleness — served at shard counts {1, 2, 4, 7} across all four
   executor backends must produce reports *identical* to the whole-graph
   `SPGEngine` (canonicalised exactly like the cross-backend harness in
   ``tests/test_executor_backends.py``, whose helpers are reused).
3. **Shared-memory lifecycle** (`repro.graph.shm`): segments are unlinked
   exactly once (``close()`` / GC finalizer), spawn-pool workers attach to
   the CSR arrays zero-copy instead of unpickling the graph, and dropping
   an engine without ``close()`` leaks neither the block nor a
   ``resource_tracker`` warning.
"""

from __future__ import annotations

import asyncio
import gc
import os
import pickle
import subprocess
import sys
import textwrap
from functools import lru_cache

import pytest

from test_executor_backends import (
    BAD_QUERIES,
    canonical_outcome,
    canonical_report,
    random_workload,
)

from repro import DiGraph, SPGEngine, build_spg
from repro.core.distances import (
    backward_distance_map,
    sharded_backward_distance_map,
)
from repro.exceptions import GraphError, QueryError, VertexError
from repro.graph.generators import erdos_renyi, path_graph, power_law_cluster, star_graph
from repro.graph.partition import (
    GraphShard,
    ShardSet,
    owner_of,
    partition_graph,
    partition_ranges,
    shard_fingerprint,
    shard_set_fingerprint,
)
from repro.graph.shm import (
    CSRGraphView,
    SharedGraphSegment,
    attach_shared_graph,
    shared_memory_available,
)
from repro.queries.workload import random_reachable_queries
from repro.service import (
    EXECUTOR_BACKENDS,
    SHARD_ENV_VAR,
    Call,
    EngineConfig,
    ShardedSPGEngine,
    resolve_shard_count,
)
from repro.service.engine import _worker_graph_probe

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: The acceptance matrix: every differential test runs at these counts.
SHARD_COUNTS = (1, 2, 4, 7)


@pytest.fixture(params=EXECUTOR_BACKENDS)
def backend(request) -> str:
    return request.param


@pytest.fixture(params=SHARD_COUNTS)
def shard_count(request) -> int:
    return request.param


def make_sharded(graph, backend_name: str, num_shards: int, **kwargs) -> ShardedSPGEngine:
    kwargs.setdefault("max_workers", 2)
    return ShardedSPGEngine(
        graph, executor_backend=backend_name, num_shards=num_shards, **kwargs
    )


@lru_cache(maxsize=None)
def whole_graph_reference(seed: int):
    """Canonical first/second-pass reports of the whole-graph serial engine."""
    graph, queries = random_workload(seed)
    with SPGEngine(graph, executor_backend="serial", max_workers=2) as engine:
        first = canonical_report(engine.run_batch(queries))
        second = canonical_report(engine.run_batch(queries))
    return first, second


# ----------------------------------------------------------------------
# Partitioner invariants
# ----------------------------------------------------------------------
GRAPH_CASES = [
    ("er-dense", lambda: erdos_renyi(26, 2.5, seed=1)),
    ("er-sparse", lambda: erdos_renyi(31, 1.2, seed=5)),
    ("power-law", lambda: power_law_cluster(30, 2, seed=2)),
    ("path", lambda: path_graph(9)),
    ("star", lambda: star_graph(8)),
    ("edgeless", lambda: DiGraph.empty(5)),
    ("single-vertex", lambda: DiGraph.empty(1)),
    ("zero-vertex", lambda: DiGraph.empty(0)),
]


@pytest.fixture(params=GRAPH_CASES, ids=[case[0] for case in GRAPH_CASES])
def any_graph(request) -> DiGraph:
    return request.param[1]()


class TestPartitionRanges:
    @pytest.mark.parametrize("num_vertices", [0, 1, 2, 7, 26, 40])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7, 9])
    def test_ranges_cover_every_vertex_once(self, num_vertices, num_shards):
        ranges = partition_ranges(num_vertices, num_shards)
        assert len(ranges) == num_shards
        cursor = 0
        for lo, hi in ranges:
            assert lo == cursor and hi >= lo
            cursor = hi
        assert cursor == num_vertices
        # Balanced: sizes differ by at most one.
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("num_vertices", [1, 2, 7, 26, 40])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7, 9])
    def test_owner_of_matches_ranges(self, num_vertices, num_shards):
        ranges = partition_ranges(num_vertices, num_shards)
        for vertex in range(num_vertices):
            owner = owner_of(num_vertices, num_shards, vertex)
            lo, hi = ranges[owner]
            assert lo <= vertex < hi

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(VertexError):
            owner_of(10, 2, 10)
        with pytest.raises(VertexError):
            owner_of(10, 2, -1)

    @pytest.mark.parametrize("bad_count", [0, -1, -7])
    def test_invalid_shard_count_rejected(self, bad_count):
        with pytest.raises(GraphError):
            partition_ranges(10, bad_count)
        with pytest.raises(GraphError):
            partition_graph(erdos_renyi(10, 1.0, seed=0), bad_count)


class TestPartitionInvariants:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_every_vertex_in_exactly_one_shard(self, any_graph, num_shards):
        shard_set = partition_graph(any_graph, num_shards)
        owners = [
            [shard.shard_id for shard in shard_set if shard.owns(vertex)]
            for vertex in any_graph.vertices()
        ]
        assert all(len(owner_list) == 1 for owner_list in owners)
        assert [owner_list[0] for owner_list in owners] == [
            shard_set.owner(vertex) for vertex in any_graph.vertices()
        ]
        assert sum(shard.num_vertices for shard in shard_set) == any_graph.num_vertices

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_every_edge_local_or_in_exactly_one_cut_table(self, any_graph, num_shards):
        shard_set = partition_graph(any_graph, num_shards)
        local_edges: list = []
        cut_edges: list = []
        for shard in shard_set:
            shard_cut = set(shard.cut_edges())
            assert len(shard_cut) == shard.num_cut_edges
            cut_edges.extend(shard_cut)
            for tail in shard.vertices():
                for head in shard.out_neighbors(tail):
                    edge = (tail, head)
                    if shard.owns(head):
                        assert edge not in shard_cut
                        local_edges.append(edge)
                    else:
                        # A cut edge belongs to the cut table of the shard
                        # owning its tail — and no other table.
                        assert edge in shard_cut
            assert shard.num_local_edges + shard.num_cut_edges == shard.num_edges
        assert len(local_edges) == len(set(local_edges))
        assert len(cut_edges) == len(set(cut_edges))
        assert set(local_edges) | set(cut_edges) == any_graph.edge_set()
        assert not set(local_edges) & set(cut_edges)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_slices_match_parent_adjacency(self, any_graph, num_shards):
        shard_set = partition_graph(any_graph, num_shards)
        for shard in shard_set:
            for vertex in shard.vertices():
                assert list(shard.out_neighbors(vertex)) == list(
                    any_graph.out_neighbors(vertex)
                )
                assert list(shard.in_neighbors(vertex)) == list(
                    any_graph.in_neighbors(vertex)
                )

    def test_unowned_vertex_access_rejected(self):
        graph = erdos_renyi(20, 2.0, seed=3)
        shard_set = partition_graph(graph, 4)
        shard = shard_set[0]
        with pytest.raises(VertexError):
            shard.out_neighbors(shard.hi)
        with pytest.raises(VertexError):
            shard.in_neighbors(graph.num_vertices + 5)

    def test_cut_table_is_built_lazily(self):
        # No serving path reads the halo table, so partitioning (notably
        # per-worker pool initialisation) must not pay the O(edges) scan.
        graph = erdos_renyi(20, 2.0, seed=3)
        shard = partition_graph(graph, 4)[0]
        assert shard._cut is None
        first = sorted(shard.cut_edges())
        assert shard._cut is not None
        assert sorted(shard.cut_edges()) == first  # built once, stable

    def test_more_shards_than_vertices(self):
        graph = erdos_renyi(3, 1.0, seed=4)
        shard_set = partition_graph(graph, 7)
        assert len(shard_set) == 7
        assert sum(shard.num_vertices for shard in shard_set) == 3
        assert [shard_set.owner(v) for v in graph.vertices()] == [0, 1, 2]
        # Empty shards own nothing and hold no edges.
        for shard in list(shard_set)[3:]:
            assert shard.num_vertices == 0 and shard.num_edges == 0


class TestShardFingerprints:
    def test_deterministic_across_rebuilds(self):
        graph = erdos_renyi(24, 2.0, seed=6)
        first = partition_graph(graph, 4)
        second = partition_graph(graph, 4)
        assert first.fingerprint == second.fingerprint
        assert [s.fingerprint for s in first] == [s.fingerprint for s in second]

    def test_equal_graphs_share_fingerprints(self):
        graph = erdos_renyi(24, 2.0, seed=6)
        clone = graph.copy(name="same-content")
        assert (
            partition_graph(graph, 3).fingerprint
            == partition_graph(clone, 3).fingerprint
        )

    def test_changes_with_shard_count(self):
        graph = erdos_renyi(24, 2.0, seed=6)
        fingerprints = {partition_graph(graph, n).fingerprint for n in (1, 2, 3, 4, 7)}
        assert len(fingerprints) == 5
        # And never collides with the parent's own fingerprint.
        assert graph.fingerprint() not in fingerprints

    def test_changes_with_parent_graph(self):
        graph = erdos_renyi(24, 2.0, seed=6)
        edges = graph.to_edge_list()
        mutated = DiGraph(graph.num_vertices, edges[:-1], name="one-edge-less")
        assert (
            partition_graph(graph, 4).fingerprint
            != partition_graph(mutated, 4).fingerprint
        )
        for ours, theirs in zip(partition_graph(graph, 4), partition_graph(mutated, 4)):
            assert ours.fingerprint != theirs.fingerprint

    def test_shard_fingerprints_pairwise_distinct(self):
        graph = erdos_renyi(24, 2.0, seed=6)
        shard_set = partition_graph(graph, 7)
        fingerprints = [shard.fingerprint for shard in shard_set]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_derivable_without_partitioning(self):
        graph = erdos_renyi(24, 2.0, seed=6)
        shard_set = partition_graph(graph, 4)
        assert shard_set.fingerprint == shard_set_fingerprint(graph.fingerprint(), 4)
        for shard in shard_set:
            assert shard.fingerprint == shard_fingerprint(
                graph.fingerprint(), 4, shard.shard_id, shard.lo, shard.hi
            )


class TestShardPickling:
    def test_shard_set_round_trip(self):
        graph = power_law_cluster(28, 2, seed=7)
        shard_set = partition_graph(graph, 4)
        clone = pickle.loads(pickle.dumps(shard_set))
        assert isinstance(clone, ShardSet)
        assert clone.fingerprint == shard_set.fingerprint
        assert clone.graph == graph
        assert [s.fingerprint for s in clone] == [s.fingerprint for s in shard_set]
        whole = backward_distance_map(graph, 5, 4).distances
        assert dict(clone.backward_distance_map(5, 4).distances.items()) == dict(
            whole.items()
        )

    def test_single_shard_round_trip(self):
        graph = erdos_renyi(18, 2.0, seed=8)
        shard = partition_graph(graph, 3)[1]
        clone = pickle.loads(pickle.dumps(shard))
        assert isinstance(clone, GraphShard)
        assert (clone.lo, clone.hi) == (shard.lo, shard.hi)
        assert clone.fingerprint == shard.fingerprint
        assert sorted(clone.cut_edges()) == sorted(shard.cut_edges())
        for vertex in shard.vertices():
            assert list(clone.out_neighbors(vertex)) == list(shard.out_neighbors(vertex))
            assert list(clone.in_neighbors(vertex)) == list(shard.in_neighbors(vertex))


# ----------------------------------------------------------------------
# The halo-exchange backward pass
# ----------------------------------------------------------------------
class TestShardedBackwardPass:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_identical_to_whole_graph_pass(self, seed, num_shards):
        graph, _ = random_workload(seed)
        shard_set = partition_graph(graph, num_shards)
        for target in range(0, graph.num_vertices, 5):
            for k in (1, 2, 4, 7):
                whole = backward_distance_map(graph, target, k)
                sharded = shard_set.backward_distance_map(target, k)
                assert sharded.target == whole.target and sharded.k == whole.k
                assert dict(sharded.distances.items()) == dict(whole.distances.items())
                assert len(sharded) == len(whole)

    def test_error_parity_with_whole_graph_pass(self):
        graph = erdos_renyi(20, 2.0, seed=9)
        shard_set = partition_graph(graph, 4)
        with pytest.raises(VertexError) as whole_error:
            backward_distance_map(graph, 99, 3)
        with pytest.raises(VertexError) as sharded_error:
            shard_set.backward_distance_map(99, 3)
        assert str(sharded_error.value) == str(whole_error.value)
        with pytest.raises(QueryError, match="k must be >= 1"):
            sharded_backward_distance_map(shard_set, 0, 0)

    def test_expansion_only_touches_owning_slices(self):
        # Seeding the BFS at a vertex of the last shard must still reach
        # everything (the halo exchange hands frontiers across shards).
        graph = path_graph(12)  # 0 -> 1 -> ... -> 11
        shard_set = partition_graph(graph, 4)
        distances = shard_set.backward_distance_map(11, 11).distances
        assert dict(distances.items()) == {11 - d: d for d in range(12)}


# ----------------------------------------------------------------------
# Sharded vs whole: the differential harness
# ----------------------------------------------------------------------
class TestShardedDifferential:
    def test_randomized_workloads_identical_to_whole_engine(self, backend, shard_count):
        for seed in (1, 2, 3):
            graph, queries = random_workload(seed)
            reference_first, reference_second = whole_graph_reference(seed)
            with make_sharded(graph, backend, shard_count) as engine:
                assert engine.executor_backend == backend
                assert engine.num_shards == shard_count
                first = engine.run_batch(queries)
                second = engine.run_batch(queries)
            assert canonical_report(first) == reference_first
            assert canonical_report(second) == reference_second

    def test_results_match_cold_build_spg(self, backend, shard_count):
        graph, queries = random_workload(4)
        with make_sharded(graph, backend, shard_count) as engine:
            report = engine.run_batch(queries)
        for outcome, query in zip(report, queries):
            if outcome.ok:
                reference = build_spg(graph, *query)
                assert outcome.edges == reference.edges
                assert outcome.result.upper_bound_edges == reference.upper_bound_edges

    def test_injected_errors_identical_to_whole_engine(self, backend, shard_count):
        graph = erdos_renyi(30, 2.5, seed=9)
        good = random_reachable_queries(graph, 4, 6, seed=9).as_batch()
        queries: list = []
        for index, entry in enumerate(good):
            queries.append(entry)
            queries.append(BAD_QUERIES[index % len(BAD_QUERIES)][0])
        with SPGEngine(graph, executor_backend="serial", max_workers=2) as whole:
            reference = canonical_report(whole.run_batch(queries))
        with make_sharded(graph, backend, shard_count) as engine:
            report = engine.run_batch(queries)
        assert canonical_report(report) == reference
        assert report.errors == len(good)

    def test_streams_identical_to_whole_engine(self, backend, shard_count):
        graph, queries = random_workload(5)
        with SPGEngine(graph, executor_backend="serial", max_workers=2) as whole:
            reference = [
                canonical_outcome(outcome)
                for outcome in whole.run_stream(iter(queries), batch_size=5)
            ]
        with make_sharded(graph, backend, shard_count) as engine:
            outcomes = [
                canonical_outcome(outcome)
                for outcome in engine.run_stream(iter(queries), batch_size=5)
            ]
        assert outcomes == reference

    def test_async_batches_identical_to_whole_engine(self, backend, shard_count):
        graph, queries = random_workload(6)
        with SPGEngine(graph, executor_backend="serial", max_workers=2) as whole:
            reference = canonical_report(whole.run_batch(queries))

        async def serve():
            with make_sharded(graph, backend, shard_count) as engine:
                return await engine.run_batch_async(queries)

        assert canonical_report(asyncio.run(serve())) == reference

    def test_single_queries_identical_and_cached(self, shard_count):
        graph = erdos_renyi(24, 2.5, seed=11)
        queries = random_reachable_queries(graph, 4, 5, seed=11).as_batch()
        with make_sharded(graph, "serial", shard_count) as engine:
            for source, target, k in queries:
                assert engine.query(source, target, k).edges == build_spg(
                    graph, source, target, k
                ).edges
            # Batch revisits hit the cache populated by single queries.
            report = engine.run_batch(queries)
        assert report.cache_hits == len(queries)

    def test_graph_swap_staleness(self, backend, shard_count):
        first_graph = erdos_renyi(24, 2.5, seed=30)
        second_graph = erdos_renyi(24, 2.5, seed=31)
        queries = random_reachable_queries(first_graph, 3, 6, seed=30).as_batch()
        with make_sharded(first_graph, backend, shard_count) as engine:
            before = engine.run_batch(queries)
            engine.set_graph(second_graph)
            after = engine.run_batch(queries)
        for outcome, query in zip(before, queries):
            if outcome.ok:
                assert outcome.edges == build_spg(first_graph, *query).edges
        for outcome, query in zip(after, queries):
            if outcome.ok:
                assert outcome.edges == build_spg(second_graph, *query).edges

    def test_mid_stream_graph_swap(self, shard_count):
        first_graph = erdos_renyi(24, 2.5, seed=32)
        second_graph = erdos_renyi(24, 2.5, seed=33)
        queries = random_reachable_queries(first_graph, 3, 6, seed=32).as_batch()
        engine = make_sharded(first_graph, "process", shard_count, cache_size=0)

        def feed():
            for query in queries[:3]:
                yield query
            engine.set_graph(second_graph)
            for query in queries[3:]:
                yield query

        try:
            outcomes = list(engine.run_stream(feed(), batch_size=3))
        finally:
            engine.close()
        for index, (outcome, query) in enumerate(zip(outcomes, queries)):
            graph = first_graph if index < 3 else second_graph
            assert outcome.ok, (index, outcome.error)
            assert outcome.edges == build_spg(graph, *query).edges


# ----------------------------------------------------------------------
# Sharded engine lifecycle and accounting
# ----------------------------------------------------------------------
class TestShardedEngineLifecycle:
    def test_process_pool_rebuilt_on_swap_kept_on_equal_swap(self):
        graph = erdos_renyi(24, 2.5, seed=12)
        other = erdos_renyi(24, 2.5, seed=13)
        queries = random_reachable_queries(graph, 4, 4, seed=12).as_batch()
        with make_sharded(graph, "process", 4) as engine:
            engine.run_batch(queries)
            warm = engine._backend
            engine.set_graph(graph.copy(name="same-content"))
            engine.run_batch(queries)
            assert engine._backend is warm  # same partition fingerprint
            engine.set_graph(other)
            engine.run_batch(queries)
            assert engine._backend is not warm

    def test_cache_keys_on_shard_set_fingerprint(self):
        graph = erdos_renyi(24, 2.5, seed=14)
        with make_sharded(graph, "serial", 4) as engine:
            assert engine._batch_fingerprint(graph) == shard_set_fingerprint(
                graph.fingerprint(), 4
            )
            assert engine._batch_fingerprint(graph) != graph.fingerprint()
        with make_sharded(graph, "serial", 2) as other:
            assert other._batch_fingerprint(graph) != engine._batch_fingerprint(graph)

    def test_stats_snapshot_extras(self):
        graph, queries = random_workload(7)
        with make_sharded(graph, "serial", 4) as engine:
            report = engine.run_batch(queries)
            snapshot = engine.stats_snapshot()
        assert snapshot["num_shards"] == 4
        assert snapshot["shard_set_fingerprint"] == shard_set_fingerprint(
            graph.fingerprint(), 4
        )
        assert sum(snapshot["shard_routed_groups"].values()) == report.planned_groups
        # Every shared group computed its backward pass via halo exchange.
        assert snapshot["sharded_backward_passes"] == report.shared_groups

    def test_groups_routed_to_target_owner(self):
        graph = erdos_renyi(28, 2.5, seed=15)
        hub = 20
        queries = [(s, hub, 4) for s in (1, 3, 5, 7)] + [(2, 4, 3)]
        with make_sharded(graph, "serial", 7) as engine:
            engine.run_batch(queries)
            routed = engine.stats_snapshot()["shard_routed_groups"]
        n = graph.num_vertices
        assert routed[owner_of(n, 7, hub)] >= 1
        assert routed[owner_of(n, 7, 4)] >= 1

    def test_close_is_idempotent_and_engine_recovers(self, shard_count):
        graph, queries = random_workload(8)
        engine = make_sharded(graph, "process", shard_count)
        first = canonical_report(engine.run_batch(queries))
        engine.close()
        engine.close()
        engine.clear_cache()
        assert canonical_report(engine.run_batch(queries)) == first
        engine.close()

    def test_invalid_shard_counts_rejected(self):
        graph = erdos_renyi(10, 1.5, seed=16)
        with pytest.raises(ValueError):
            ShardedSPGEngine(graph, num_shards=0)
        with pytest.raises(ValueError):
            ShardedSPGEngine(graph, num_shards=-3)


# ----------------------------------------------------------------------
# Shard-count resolution and from_config dispatch
# ----------------------------------------------------------------------
class TestShardCountResolution:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "7")
        assert resolve_shard_count(3) == 3
        assert resolve_shard_count(0) == 0

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "5")
        assert resolve_shard_count(None) == 5
        monkeypatch.delenv(SHARD_ENV_VAR)
        assert resolve_shard_count(None) == 0

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_shard_count("four")
        with pytest.raises(ValueError):
            resolve_shard_count(-1)
        monkeypatch.setenv(SHARD_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_shard_count(None)

    def test_from_config_dispatches_on_num_shards(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        graph = erdos_renyi(20, 2.0, seed=17)
        plain = SPGEngine.from_config(graph, EngineConfig(executor_backend="serial"))
        assert type(plain) is SPGEngine
        sharded = SPGEngine.from_config(
            graph, EngineConfig(executor_backend="serial", num_shards=4)
        )
        assert isinstance(sharded, ShardedSPGEngine)
        assert sharded.num_shards == 4
        plain.close()
        sharded.close()

    def test_from_config_honours_env_var(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "3")
        graph = erdos_renyi(20, 2.0, seed=17)
        engine = SPGEngine.from_config(graph, EngineConfig(executor_backend="serial"))
        assert isinstance(engine, ShardedSPGEngine)
        assert engine.num_shards == 3
        engine.close()

    def test_engine_config_round_trip_with_shard_fields(self):
        config = EngineConfig(num_shards=4, shared_memory=False, executor_backend="process")
        assert pickle.loads(pickle.dumps(config)) == config

    def test_sharded_engine_defaults_to_env_then_one(self, monkeypatch):
        graph = erdos_renyi(12, 1.5, seed=18)
        monkeypatch.setenv(SHARD_ENV_VAR, "2")
        engine = ShardedSPGEngine(graph, executor_backend="serial")
        assert engine.num_shards == 2
        engine.close()
        monkeypatch.delenv(SHARD_ENV_VAR)
        engine = ShardedSPGEngine(graph, executor_backend="serial")
        assert engine.num_shards == 1
        engine.close()


# ----------------------------------------------------------------------
# Shared-memory segments and the zero-copy view
# ----------------------------------------------------------------------
needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


@needs_shm
class TestSharedGraphSegment:
    def test_attach_round_trip_equals_graph(self):
        graph = power_law_cluster(26, 2, seed=19)
        graph.csr(), graph.csr_reverse()
        with SharedGraphSegment(graph) as segment:
            attached = attach_shared_graph(segment.descriptor)
            view = attached.graph
            assert isinstance(view, CSRGraphView)
            assert view == graph
            assert view.fingerprint() == graph.fingerprint()
            assert view.num_edges == graph.num_edges
            assert view.max_degree() == graph.max_degree()
            assert view.edge_set() == graph.edge_set()
            for vertex in graph.vertices():
                assert list(view.out_neighbors(vertex)) == list(graph.out_neighbors(vertex))
                assert list(view.in_neighbors(vertex)) == list(graph.in_neighbors(vertex))
                assert view.out_degree(vertex) == graph.out_degree(vertex)
                assert view.in_degree(vertex) == graph.in_degree(vertex)
            attached.close()

    def test_view_answers_eve_queries_identically(self):
        graph = erdos_renyi(28, 2.5, seed=20)
        with SharedGraphSegment(graph) as segment:
            attached = attach_shared_graph(segment.descriptor)
            view = attached.graph
            for source, target, k in random_reachable_queries(graph, 5, 6, seed=20).as_batch():
                ours = build_spg(view, source, target, k)
                reference = build_spg(graph, source, target, k)
                assert ours.edges == reference.edges
                assert ours.labels == reference.labels
            attached.close()

    def test_view_partitions_into_shared_slices(self):
        graph = erdos_renyi(30, 2.5, seed=21)
        with SharedGraphSegment(graph) as segment:
            attached = attach_shared_graph(segment.descriptor)
            shard_set = partition_graph(attached.graph, 4)
            whole = backward_distance_map(graph, 7, 5)
            assert dict(shard_set.backward_distance_map(7, 5).distances.items()) == dict(
                whole.distances.items()
            )
            attached.close()

    def test_unlinked_exactly_once_on_close(self):
        graph = erdos_renyi(12, 1.5, seed=22)
        segment = SharedGraphSegment(graph)
        descriptor = segment.descriptor
        assert not segment.closed
        segment.close()
        assert segment.closed
        segment.close()  # second close is a no-op, not a double unlink
        with pytest.raises(FileNotFoundError):
            attach_shared_graph(descriptor)

    def test_gc_finalizer_unlinks_dropped_segment(self):
        graph = erdos_renyi(12, 1.5, seed=23)
        segment = SharedGraphSegment(graph)
        descriptor = segment.descriptor
        del segment
        gc.collect()
        with pytest.raises(FileNotFoundError):
            attach_shared_graph(descriptor)

    def test_view_pickle_round_trip_is_self_contained(self):
        graph = erdos_renyi(18, 2.0, seed=24)
        with SharedGraphSegment(graph) as segment:
            attached = attach_shared_graph(segment.descriptor)
            clone = pickle.loads(pickle.dumps(attached.graph))
            attached.close()
        # The segment is gone; the clone must still answer.
        assert isinstance(clone, CSRGraphView)
        assert clone == graph
        assert clone.fingerprint() == graph.fingerprint()

    def test_view_copy_and_reverse(self):
        graph = erdos_renyi(16, 2.0, seed=25)
        with SharedGraphSegment(graph) as segment:
            attached = attach_shared_graph(segment.descriptor)
            view = attached.graph
            clone = view.copy(name="clone")
            assert clone == graph and clone.fingerprint() == graph.fingerprint()
            reverse = view.reverse()
            assert reverse.edge_set() == {(v, u) for (u, v) in graph.edge_set()}
            materialized = view.materialize()
            assert type(materialized) is DiGraph and materialized == graph
            attached.close()


@needs_shm
class TestSharedMemoryServing:
    def test_plain_engine_workers_attach_zero_copy(self):
        graph = erdos_renyi(24, 2.5, seed=26)
        queries = random_reachable_queries(graph, 4, 6, seed=26).as_batch()
        with SPGEngine(graph, executor_backend="process", max_workers=2) as engine:
            report = engine.run_batch(queries)
            assert all(outcome.ok for outcome in report)
            assert engine._segment is not None and not engine._segment.closed
            probes = engine._ensure_backend().run([Call(_worker_graph_probe)] * 2)
            for probe in probes:
                assert probe["shared"], probe
                assert probe["graph_type"] == "CSRGraphView"
                assert probe["fingerprint"] == graph.fingerprint()
        assert engine._segment is None  # released by close()

    def test_sharded_engine_workers_attach_zero_copy(self):
        graph = erdos_renyi(24, 2.5, seed=27)
        queries = random_reachable_queries(graph, 4, 6, seed=27).as_batch()
        with make_sharded(graph, "process", 4) as engine:
            report = engine.run_batch(queries)
            assert all(outcome.ok for outcome in report)
            probes = engine._ensure_backend().run([Call(_worker_graph_probe)] * 2)
            assert all(probe["shared"] for probe in probes)

    def test_required_shared_memory_covers_transient_pools(self):
        # shared_memory=True is a contract: even a per-batch width override
        # (which checks out a *transient* pool) must attach its workers to
        # a segment instead of pickling, and must unlink it on close.
        graph = erdos_renyi(24, 2.5, seed=26)
        queries = random_reachable_queries(graph, 4, 6, seed=26).as_batch()
        def live_segments():
            return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}

        baseline = live_segments()
        with SPGEngine(
            graph, executor_backend="process", max_workers=2, shared_memory=True
        ) as engine:
            backend, transient = engine._checkout_backend(1)
            assert transient
            try:
                probes = backend.run([Call(_worker_graph_probe)])
                assert probes[0]["shared"], probes
            finally:
                backend.close()
            report = engine.run_batch(queries, max_workers=1)
            assert all(outcome.ok for outcome in report)
        assert live_segments() <= baseline  # nothing leaked

    def test_shared_memory_false_pickles_instead(self):
        graph = erdos_renyi(24, 2.5, seed=26)
        queries = random_reachable_queries(graph, 4, 6, seed=26).as_batch()
        with SPGEngine(
            graph, executor_backend="process", max_workers=2, shared_memory=False
        ) as engine:
            engine.run_batch(queries)
            assert engine._segment is None
            probes = engine._ensure_backend().run([Call(_worker_graph_probe)])
            assert not probes[0]["shared"]
            assert probes[0]["graph_type"] == "DiGraph"

    def test_shared_and_pickled_serving_identical(self):
        graph, queries = random_workload(9)
        reports = {}
        for shared in (True, False):
            with SPGEngine(
                graph, executor_backend="process", max_workers=2, shared_memory=shared
            ) as engine:
                reports[shared] = canonical_report(engine.run_batch(queries))
        assert reports[True] == reports[False]

    def test_graph_swap_releases_old_segment(self):
        first_graph = erdos_renyi(20, 2.0, seed=28)
        second_graph = erdos_renyi(20, 2.0, seed=29)
        queries = random_reachable_queries(first_graph, 3, 4, seed=28).as_batch()
        with SPGEngine(first_graph, executor_backend="process", max_workers=2) as engine:
            engine.run_batch(queries)
            old_segment = engine._segment
            engine.set_graph(second_graph)
            engine.run_batch(queries)
            assert engine._segment is not old_segment
            assert old_segment.closed
            assert not engine._segment.closed

    @pytest.mark.parametrize("backend", ["serial", "thread", "async"])
    def test_in_process_backends_never_build_segments(self, backend):
        graph, queries = random_workload(10)
        with SPGEngine(graph, executor_backend=backend, max_workers=2) as engine:
            engine.run_batch(queries)
            assert engine._segment is None


LEAK_PROBE_SCRIPT = textwrap.dedent(
    """
    import gc, os, sys

    from repro.graph.generators import erdos_renyi
    from repro.queries.workload import random_reachable_queries
    from repro.service import {engine_cls}

    def main():
        graph = erdos_renyi(30, 2.5, seed=1)
        queries = random_reachable_queries(graph, 4, 6, seed=1).as_batch()
        engine = {engine_cls}(graph, executor_backend="process", max_workers=2{extra})
        report = engine.run_batch(queries)
        assert all(outcome.ok for outcome in report), "batch failed"
        segment = engine._segment
        assert segment is not None, "no shared segment was created"
        name = segment.name
        # Drop the engine WITHOUT close(): the GC finalizer must reap the
        # pool and unlink the segment exactly once.
        del engine
        del segment
        gc.collect()
        print("SEGMENT", name, os.path.exists("/dev/shm/" + name.lstrip("/")))

    if __name__ == "__main__":
        main()
    """
)


@needs_shm
@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm to observe unlink")
class TestResourceTrackerHygiene:
    @pytest.mark.parametrize(
        "engine_cls,extra",
        [("SPGEngine", ""), ("ShardedSPGEngine", ", num_shards=4")],
        ids=["plain", "sharded"],
    )
    def test_dropped_engine_leaks_no_segment_and_no_warnings(self, engine_cls, extra):
        script = LEAK_PROBE_SCRIPT.format(engine_cls=engine_cls, extra=extra)
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ, "PYTHONPATH": SRC_DIR},
        )
        assert completed.returncode == 0, completed.stderr
        marker = [line for line in completed.stdout.splitlines() if line.startswith("SEGMENT")]
        assert marker, completed.stdout
        _, name, still_exists = marker[0].split()
        assert still_exists == "False", f"segment {name} leaked past the finalizer"
        # The whole point: no resource_tracker grumbling, no teardown noise.
        assert "leaked shared_memory" not in completed.stderr, completed.stderr
        assert "resource_tracker" not in completed.stderr, completed.stderr
        assert "BufferError" not in completed.stderr, completed.stderr
        assert "Traceback" not in completed.stderr, completed.stderr


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestShardedCLI:
    def _run(self, args, stdin_text, env_extra=None):
        env = {"PYTHONPATH": SRC_DIR}
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            input=stdin_text,
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )

    @pytest.mark.parametrize("shards", ["1", "4"])
    def test_shards_flag_round_trip(self, tmp_path, shards):
        import json

        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\na c\nc d\nb d\n", encoding="utf-8")
        stdin_text = "a d 3\nb d 2\na d 3\n"
        baseline = self._run(["--edges", str(edges), "--stats"], stdin_text)
        sharded = self._run(
            ["--edges", str(edges), "--shards", shards, "--stats"], stdin_text
        )
        assert sharded.returncode == 0, sharded.stderr
        assert (
            [json.loads(line)["edges"] for line in sharded.stdout.splitlines()]
            == [json.loads(line)["edges"] for line in baseline.stdout.splitlines()]
        )
        stats = json.loads(sharded.stderr.strip().splitlines()[-1])
        assert stats["num_shards"] == int(shards)
        assert sum(stats["shard_routed_groups"].values()) >= 1

    def test_shards_env_var_round_trip(self, tmp_path):
        import json

        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\na c\nc d\n", encoding="utf-8")
        completed = self._run(
            ["--edges", str(edges), "--stats"],
            "a d 3\n",
            env_extra={SHARD_ENV_VAR: "2"},
        )
        assert completed.returncode == 0, completed.stderr
        stats = json.loads(completed.stderr.strip().splitlines()[-1])
        assert stats["num_shards"] == 2

    def test_invalid_shards_fails_cleanly(self, tmp_path):
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\n", encoding="utf-8")
        completed = self._run(["--edges", str(edges), "--shards", "-2"], "a b 1\n")
        assert completed.returncode == 2
        assert "invalid engine configuration" in completed.stderr
