"""Tests for the serving layer (repro.service) and its core reuse hooks.

Covers the graph fingerprint, the shared backward-pass hook in
``repro.core.distances``/``repro.core.eve``, the LRU result cache, the
batch planner, the concurrent executor, ``SPGEngine`` (batch == sequential,
cache hit/invalidation, determinism under threads, error isolation,
streaming), the workload adapters, and a CLI round trip.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import DiGraph, EVEConfig, SPGEngine, build_spg
from repro.core.distances import (
    backward_distance_map,
    bounded_bfs,
    compute_distance_index,
)
from repro.core.eve import EVE
from repro.exceptions import QueryError
from repro.graph.generators import erdos_renyi, power_law_cluster
from repro.queries.workload import (
    Query,
    random_reachable_queries,
    target_grouped_queries,
    workloads_to_batch,
)
from repro.service import (
    EngineStats,
    LatencyWindow,
    ResultCache,
    TaskError,
    make_cache_key,
    plan_batch,
    run_tasks,
)
from repro.service.workload_io import iter_query_lines, outcome_record, parse_query_line

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# Graph fingerprint
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_equal_graphs_share_fingerprint(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        a = DiGraph(3, edges, name="a")
        b = DiGraph(3, reversed(edges), name="b")  # order/name must not matter
        assert a.fingerprint() == b.fingerprint()

    def test_different_edges_differ(self):
        a = DiGraph(3, [(0, 1), (1, 2)])
        b = DiGraph(3, [(0, 1), (2, 1)])
        assert a.fingerprint() != b.fingerprint()

    def test_vertex_count_matters(self):
        a = DiGraph(3, [(0, 1)])
        b = DiGraph(4, [(0, 1)])
        assert a.fingerprint() != b.fingerprint()

    def test_cached_and_stable(self):
        g = erdos_renyi(20, 2.0, seed=1)
        first = g.fingerprint()
        assert g.fingerprint() is first  # cached string object

    def test_copy_and_reverse(self):
        g = erdos_renyi(15, 2.0, seed=2)
        assert g.copy().fingerprint() == g.fingerprint()
        rev = g.reverse()
        assert rev.fingerprint() != g.fingerprint()
        assert rev.reverse().fingerprint() == g.fingerprint()


# ----------------------------------------------------------------------
# Shared backward pass (core reuse hooks)
# ----------------------------------------------------------------------
class TestSharedBackward:
    def test_backward_map_is_full_reverse_bfs(self, figure1_graph, figure1_ids):
        t = figure1_ids("t")
        shared = backward_distance_map(figure1_graph, t, 4)
        assert shared.distances == bounded_bfs(figure1_graph, t, 4, reverse=True)
        assert shared.target == t and shared.k == 4

    def test_index_exact_on_candidate_space(self):
        for seed in range(5):
            g = erdos_renyi(25, 3.0, seed=seed)
            rng = random.Random(seed)
            s, t = rng.sample(range(25), 2)
            k = 5
            shared = backward_distance_map(g, t, k)
            index = compute_distance_index(g, s, t, k, shared_backward=shared)
            reference = compute_distance_index(g, s, t, k, strategy="single")
            assert index.candidate_vertices() == reference.candidate_vertices()
            for v in reference.candidate_vertices():
                assert index.dist_from_source(v) == reference.dist_from_source(v)
                assert index.dist_to_target(v) == reference.dist_to_target(v)

    def test_eve_answers_identical_with_shared_backward(self):
        for seed in range(8):
            g = power_law_cluster(22, 2, seed=seed)
            rng = random.Random(seed + 100)
            for _ in range(5):
                s, t = rng.sample(range(22), 2)
                for k in (3, 5, 7):
                    shared = backward_distance_map(g, t, k)
                    with_shared = EVE(g).query(s, t, k, shared_backward=shared)
                    cold = build_spg(g, s, t, k)
                    assert with_shared.edges == cold.edges
                    assert with_shared.upper_bound_edges == cold.upper_bound_edges
                    assert with_shared.labels == cold.labels

    def test_wider_budget_is_accepted(self, diamond_graph):
        shared = backward_distance_map(diamond_graph, 3, 5)
        result = EVE(diamond_graph).query(0, 3, 2, shared_backward=shared)
        assert result.edges == build_spg(diamond_graph, 0, 3, 2).edges

    def test_mismatched_target_rejected(self, diamond_graph):
        shared = backward_distance_map(diamond_graph, 2, 3)
        with pytest.raises(QueryError, match="target"):
            compute_distance_index(diamond_graph, 0, 3, 3, shared_backward=shared)

    def test_narrower_budget_rejected(self, diamond_graph):
        shared = backward_distance_map(diamond_graph, 3, 2)
        with pytest.raises(QueryError, match="k="):
            compute_distance_index(diamond_graph, 0, 3, 4, shared_backward=shared)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def _key(self, i: int):
        return make_cache_key(i, i + 1, 3, EVEConfig(), "fp")

    def test_hit_miss_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get(self._key(0)) is None
        cache.put(self._key(0), "r0")
        assert cache.get(self._key(0)) == "r0"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put(self._key(0), "r0")
        cache.put(self._key(1), "r1")
        cache.get(self._key(0))  # refresh 0; 1 becomes LRU
        cache.put(self._key(2), "r2")
        assert cache.get(self._key(1)) is None
        assert cache.get(self._key(0)) == "r0"
        assert cache.evictions == 1

    def test_config_and_fingerprint_partition_keys(self):
        verify_on = make_cache_key(0, 1, 3, EVEConfig(), "fp")
        verify_off = make_cache_key(0, 1, 3, EVEConfig(verify=False), "fp")
        other_graph = make_cache_key(0, 1, 3, EVEConfig(), "fp2")
        assert len({verify_on, verify_off, other_graph}) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_thread_safety_smoke(self):
        cache = ResultCache(max_entries=64)

        def worker(base: int) -> None:
            for i in range(200):
                key = self._key((base * 200 + i) % 100)
                cache.put(key, i)
                cache.get(key)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_groups_by_target_and_k(self):
        queries = [(0, 9, 4), (1, 9, 4), (2, 8, 4), (3, 9, 5), (4, 9, 4)]
        plan = plan_batch(queries)
        by_key = {(g.target, g.k): g for g in plan.groups}
        assert set(by_key) == {(9, 4), (8, 4), (9, 5)}
        assert [q.index for q in by_key[(9, 4)].queries] == [0, 1, 4]
        assert by_key[(9, 4)].shared
        assert not by_key[(8, 4)].shared and not by_key[(9, 5)].shared
        assert plan.num_queries == 5
        assert plan.num_shared_groups == 1
        assert plan.reused_backward_passes == 2

    def test_deterministic_group_order(self):
        queries = [(i, i % 3, 4) for i in range(12)]
        first = plan_batch(queries)
        second = plan_batch(list(queries))
        assert [(g.target, g.k) for g in first.groups] == [
            (g.target, g.k) for g in second.groups
        ]

    def test_min_group_size(self):
        plan = plan_batch([(0, 9, 4), (1, 9, 4)], min_group_size=3)
        assert plan.num_shared_groups == 0
        with pytest.raises(QueryError):
            plan_batch([], min_group_size=1)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class TestExecutor:
    def test_results_in_task_order(self):
        tasks = [lambda i=i: i * i for i in range(20)]
        assert run_tasks(tasks, max_workers=8) == [i * i for i in range(20)]

    def test_error_isolation(self):
        def boom():
            raise ValueError("boom")

        results = run_tasks([lambda: 1, boom, lambda: 3], max_workers=4)
        assert results[0] == 1 and results[2] == 3
        assert isinstance(results[1], TaskError)
        assert "boom" in results[1].message

    def test_inline_path(self):
        order = []
        tasks = [lambda i=i: order.append(i) for i in range(5)]
        run_tasks(tasks, max_workers=1)
        assert order == list(range(5))


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestSPGEngine:
    def test_batch_equals_sequential_over_random_graphs(self):
        for seed in range(6):
            graph = erdos_renyi(28, 2.5, seed=seed)
            workload = random_reachable_queries(graph, 4, 12, seed=seed)
            engine = SPGEngine(graph, max_workers=4)
            report = engine.run_batch(workload.as_batch())
            assert len(report) == 12
            for outcome, query in zip(report, workload):
                reference = build_spg(graph, query.source, query.target, query.k)
                assert outcome.ok
                assert outcome.edges == reference.edges

    def test_accepts_tuples_queries_and_mappings(self, diamond_graph):
        engine = SPGEngine(diamond_graph)
        report = engine.run_batch(
            [(0, 3, 2), Query(source=0, target=3, k=2), {"source": 0, "target": 3, "k": 2}]
        )
        expected = build_spg(diamond_graph, 0, 3, 2).edges
        assert [o.edges for o in report] == [expected] * 3
        # All three normalise to one query: two are in-batch dedup hits.
        assert report.cache_hits == 2

    def test_cache_hits_across_batches(self, small_dense_graph):
        workload = random_reachable_queries(small_dense_graph, 4, 8, seed=3)
        queries = sorted(set(workload.as_batch()))  # drop in-batch duplicates
        engine = SPGEngine(small_dense_graph, max_workers=1)
        first = engine.run_batch(queries)
        second = engine.run_batch(queries)
        assert first.cache_hits == 0
        assert second.cache_hits == len(queries)
        assert [o.edges for o in first] == [o.edges for o in second]
        assert engine.stats.hit_rate == 0.5

    def test_graph_swap_invalidates_and_equal_graph_rehits(self, small_dense_graph):
        workload = random_reachable_queries(small_dense_graph, 4, 6, seed=4)
        engine = SPGEngine(small_dense_graph, max_workers=1)
        engine.run_batch(workload.as_batch())

        # A genuinely different graph must not serve stale results.
        edges = small_dense_graph.to_edge_list()
        changed = DiGraph(
            small_dense_graph.num_vertices, edges[:-1], name="changed"
        )
        engine.set_graph(changed)
        changed_report = engine.run_batch(workload.as_batch())
        assert changed_report.cache_hits == 0
        for outcome, query in zip(changed_report, workload):
            if outcome.ok:
                reference = build_spg(changed, query.source, query.target, query.k)
                assert outcome.edges == reference.edges

        # Swapping back to an *equal* graph (new object) hits again.
        engine.set_graph(small_dense_graph.copy(name="same-content"))
        rehit = engine.run_batch(workload.as_batch())
        assert rehit.cache_hits == len(workload)

    def test_concurrent_execution_is_deterministic(self):
        graph = power_law_cluster(40, 2, seed=9)
        queries = [(s, t, 5) for s in range(8) for t in range(30, 38) if s != t]
        reports = []
        for _ in range(3):
            engine = SPGEngine(graph, max_workers=8)
            reports.append(engine.run_batch(queries))
        baseline = [(o.source, o.target, o.k, sorted(o.edges)) for o in reports[0]]
        for report in reports[1:]:
            assert [(o.source, o.target, o.k, sorted(o.edges)) for o in report] == baseline

    def test_error_isolation(self, diamond_graph):
        engine = SPGEngine(diamond_graph, max_workers=4)
        report = engine.run_batch([(0, 0, 2), (99, 3, 2), (0, 3, -1), (0, 3, 2)])
        assert [outcome.ok for outcome in report] == [False, False, False, True]
        assert "distinct" in report.outcomes[0].error
        assert "vertex" in report.outcomes[1].error
        assert report.errors == 3
        assert report.outcomes[3].edges == build_spg(diamond_graph, 0, 3, 2).edges

    def test_errors_are_not_cached(self, diamond_graph):
        engine = SPGEngine(diamond_graph, max_workers=1)
        for _ in range(2):
            report = engine.run_batch([(0, 0, 2)])
            assert not report.outcomes[0].ok
            assert report.cache_hits == 0

    def test_shared_groups_report_reuse(self):
        graph = erdos_renyi(30, 3.0, seed=11)
        workload = target_grouped_queries(graph, 4, 2, 3, seed=11)
        engine = SPGEngine(graph, max_workers=1)
        report = engine.run_batch(workload.as_batch())
        assert report.shared_groups == 2
        assert report.reused_backward_passes == 4
        assert all(outcome.reused_backward for outcome in report)
        for outcome, query in zip(report, workload):
            assert outcome.edges == build_spg(
                graph, query.source, query.target, query.k
            ).edges

    def test_single_query_api_and_stats(self, small_dense_graph):
        engine = SPGEngine(small_dense_graph)
        workload = random_reachable_queries(small_dense_graph, 4, 1, seed=5)
        query = workload.queries[0]
        first = engine.query(query.source, query.target, query.k)
        second = engine.query(query.source, query.target, query.k)
        assert first.edges == second.edges
        snapshot = engine.stats_snapshot()
        assert snapshot["queries_served"] == 2
        assert snapshot["cache_hits"] == 1
        assert snapshot["cache"]["entries"] == 1
        with pytest.raises(QueryError):
            engine.query(query.source, query.source, query.k)
        assert engine.stats_snapshot()["errors"] == 1

    def test_cache_disabled(self, small_dense_graph):
        engine = SPGEngine(small_dense_graph, cache_size=0, max_workers=1)
        assert engine.cache is None
        workload = random_reachable_queries(small_dense_graph, 4, 4, seed=6)
        for _ in range(2):
            report = engine.run_batch(workload.as_batch())
            assert report.cache_hits == 0

    def test_run_stream_orders_and_chunks(self):
        graph = erdos_renyi(25, 2.5, seed=13)
        workload = random_reachable_queries(graph, 4, 10, seed=13)
        engine = SPGEngine(graph, max_workers=2)
        outcomes = list(engine.run_stream(iter(workload.as_batch()), batch_size=3))
        assert [(o.source, o.target) for o in outcomes] == [
            (q.source, q.target) for q in workload
        ]
        assert engine.stats.batches_served == 4  # ceil(10 / 3)

    def test_malformed_queries_are_isolated(self, diamond_graph):
        engine = SPGEngine(diamond_graph)
        report = engine.run_batch(
            [(0, 3), {"s": 0, "t": 3, "k": 2}, ("a", "b", 2), (0, 3, 2)]
        )
        assert [outcome.ok for outcome in report] == [False, False, False, True]
        assert "triples" in report.outcomes[0].error
        assert "source/target/k" in report.outcomes[1].error
        assert "non-integer" in report.outcomes[2].error
        assert report.outcomes[3].edges == build_spg(diamond_graph, 0, 3, 2).edges

    def test_errored_duplicates_do_not_count_as_hits(self, diamond_graph):
        engine = SPGEngine(diamond_graph, max_workers=1)
        report = engine.run_batch([(0, 99, 2), (0, 99, 2)])
        assert [outcome.ok for outcome in report] == [False, False]
        assert report.cache_hits == 0
        assert engine.stats_snapshot()["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
class TestStats:
    def test_latency_window_quantiles(self):
        window = LatencyWindow(capacity=100)
        for value in range(1, 101):
            window.record(value / 1000.0)
        assert window.quantile(0.5) == pytest.approx(0.050)
        assert window.quantile(0.95) == pytest.approx(0.095)
        assert window.quantile(1.0) == pytest.approx(0.100)
        assert window.quantile(0.0) == pytest.approx(0.001)

    def test_latency_window_wraps(self):
        window = LatencyWindow(capacity=4)
        for value in (1.0, 2.0, 3.0, 4.0, 10.0, 20.0):
            window.record(value)
        assert window.recorded == 6
        assert len(window) == 4
        assert window.quantile(1.0) == 20.0

    def test_engine_stats_reset(self):
        stats = EngineStats()
        stats.record_query(0.01, cached=False)
        stats.record_query(0.0, cached=True, reused_backward=True)
        assert stats.hit_rate == 0.5
        assert stats.shared_backward_reuses == 1
        stats.reset()
        assert stats.queries_served == 0
        assert stats.snapshot()["p95_ms"] == 0.0


# ----------------------------------------------------------------------
# Workload adapters
# ----------------------------------------------------------------------
class TestWorkloadAdapters:
    def test_as_batch_and_merge(self, small_dense_graph):
        first = random_reachable_queries(small_dense_graph, 3, 3, seed=1)
        second = random_reachable_queries(small_dense_graph, 4, 2, seed=2)
        batch = workloads_to_batch([first, second])
        assert batch == first.as_batch() + second.as_batch()
        assert all(len(entry) == 3 for entry in batch)

    def test_target_grouped_queries_shape(self):
        graph = erdos_renyi(30, 3.0, seed=21)
        workload = target_grouped_queries(graph, 4, 3, 4, seed=21)
        assert len(workload) == 12
        by_target = {}
        for query in workload:
            by_target.setdefault(query.target, set()).add(query.source)
            assert query.distance is not None and query.distance <= 4
        assert len(by_target) == 3
        assert all(len(sources) == 4 for sources in by_target.values())

    def test_target_grouped_queries_too_sparse(self):
        path = DiGraph(3, [(0, 1), (1, 2)], name="path")
        with pytest.raises(QueryError):
            target_grouped_queries(path, 2, 3, 2, seed=0)


# ----------------------------------------------------------------------
# Workload IO + CLI
# ----------------------------------------------------------------------
class TestWorkloadIO:
    def test_parse_json_and_plain_lines(self):
        assert parse_query_line('{"source": 1, "target": 2, "k": 3}') == (1, 2, 3)
        assert parse_query_line("a b 4") == ("a", "b", 4)
        with pytest.raises(QueryError):
            parse_query_line("1 2")
        with pytest.raises(QueryError):
            parse_query_line('{"source": 1}')

    def test_iter_skips_blanks_and_comments(self):
        lines = ["# header", "", "0 1 3", "  ", "{\"source\": 2, \"target\": 0, \"k\": 2}"]
        assert list(iter_query_lines(lines)) == [("0", "1", 3), (2, 0, 2)]

    def test_outcome_record_relabel(self, diamond_graph):
        engine = SPGEngine(diamond_graph)
        outcome = engine.run_batch([(0, 3, 2)]).outcomes[0]
        record = outcome_record(outcome, relabel=lambda v: f"v{v}")
        assert record["source"] == "v0" and record["target"] == "v3"
        assert ["v0", "v3"] in [list(edge) for edge in record["edges"]]


class TestCLI:
    def _run(self, args, stdin_text):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            input=stdin_text,
            capture_output=True,
            text=True,
            timeout=300,
            env={"PYTHONPATH": str(SRC_DIR)},
        )
        return completed

    def test_round_trip_on_edge_list(self, tmp_path):
        edges = tmp_path / "graph.txt"
        edges.write_text("# toy\na b\nb c\na c\nc d\n", encoding="utf-8")
        stdin_text = (
            '{"source": "a", "target": "d", "k": 3}\n'
            "a d 3\n"          # duplicate -> cache/dedup hit
            "a zzz 2\n"        # unknown label -> isolated error
        )
        completed = self._run(["--edges", str(edges), "--stats"], stdin_text)
        assert completed.returncode == 0, completed.stderr
        records = [json.loads(line) for line in completed.stdout.splitlines()]
        assert len(records) == 3
        assert records[0]["ok"] and records[0]["num_edges"] == 4
        assert sorted(map(tuple, records[0]["edges"])) == [
            ("a", "b"), ("a", "c"), ("b", "c"), ("c", "d")
        ]
        assert records[1]["ok"] and records[1]["cached"]
        assert records[1]["edges"] == records[0]["edges"]
        assert not records[2]["ok"] and "zzz" in records[2]["error"]
        stats = json.loads(completed.stderr.strip().splitlines()[-1])
        assert stats["queries_served"] == 2

    def test_round_trip_matches_build_spg_on_dataset(self, tmp_path):
        from repro.datasets import load_dataset

        graph = load_dataset("ps", scale=0.08)
        workload = random_reachable_queries(graph, 4, 5, seed=7)
        queries_file = tmp_path / "queries.jsonl"
        queries_file.write_text(
            "".join(
                json.dumps({"source": q.source, "target": q.target, "k": q.k}) + "\n"
                for q in workload
            ),
            encoding="utf-8",
        )
        completed = self._run(
            ["--dataset", "ps", "--scale", "0.08", "--queries", str(queries_file)],
            "",
        )
        assert completed.returncode == 0, completed.stderr
        records = [json.loads(line) for line in completed.stdout.splitlines()]
        assert len(records) == 5
        for record, query in zip(records, workload):
            reference = build_spg(graph, query.source, query.target, query.k)
            assert record["ok"]
            assert sorted(map(tuple, record["edges"])) == sorted(reference.edges)

    def test_bad_graph_source_fails_cleanly(self):
        completed = self._run(["--edges", "/nonexistent/graph.txt"], "")
        assert completed.returncode == 2
        assert "could not load graph" in completed.stderr

    @pytest.mark.parametrize("backend", ["serial", "process", "async"])
    def test_backend_flag_round_trip(self, tmp_path, backend):
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\na c\nc d\n", encoding="utf-8")
        completed = self._run(
            ["--edges", str(edges), "--backend", backend, "--workers", "2", "--stats"],
            "a d 3\nb d 2\n",
        )
        assert completed.returncode == 0, completed.stderr
        records = [json.loads(line) for line in completed.stdout.splitlines()]
        assert [record["ok"] for record in records] == [True, True]
        assert sorted(map(tuple, records[0]["edges"])) == [
            ("a", "b"), ("a", "c"), ("b", "c"), ("c", "d")
        ]
        stats = json.loads(completed.stderr.strip().splitlines()[-1])
        assert stats["executor_backend"] == backend

    def test_unknown_backend_rejected(self):
        completed = self._run(["--dataset", "ps", "--backend", "gpu"], "")
        assert completed.returncode == 2
        assert "--backend" in completed.stderr


# ----------------------------------------------------------------------
# CLI ingestion: endpoint coercion, translation failures, telemetry loss
# ----------------------------------------------------------------------
class TestVertexIdCoercion:
    def test_integral_values_accepted(self):
        from repro.service.workload_io import coerce_vertex_id

        assert coerce_vertex_id(5) == 5
        assert coerce_vertex_id(3.0) == 3
        assert coerce_vertex_id("7") == 7

    def test_non_integral_float_rejected(self):
        from repro.service.workload_io import coerce_vertex_id

        with pytest.raises(QueryError, match="integral"):
            coerce_vertex_id(2.9)

    def test_boolean_rejected(self):
        # bool is a subclass of int: int(True) == 1 would silently answer
        # for vertex 1, a different query than the caller wrote.
        from repro.service.workload_io import coerce_vertex_id

        with pytest.raises(QueryError, match="boolean"):
            coerce_vertex_id(True)
        with pytest.raises(QueryError, match="boolean"):
            coerce_vertex_id(False)

    def test_garbage_rejected(self):
        from repro.service.workload_io import coerce_vertex_id

        with pytest.raises(QueryError):
            coerce_vertex_id("x7")
        with pytest.raises(QueryError):
            coerce_vertex_id(None)

    def test_translate_queries_isolates_failures_in_order(self):
        from repro.service.workload_io import translate_queries

        good, failed = translate_queries(
            [(0, 5, 3), (2.9, 5, 3), (1, True, 4), (4.0, "6", 2)]
        )
        assert good == [(0, 5, 3), (4, 6, 2)]
        assert [index for index, _ in failed] == [1, 2]
        assert "integral" in failed[0][1]
        assert "boolean" in failed[1][1]


class TestCLIIngestion:
    def _run(self, args, stdin_text):
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            input=stdin_text,
            capture_output=True,
            text=True,
            timeout=300,
            env={"PYTHONPATH": str(SRC_DIR)},
        )

    def test_non_integral_endpoints_error_per_query(self):
        """Regression: 2.9 used to be silently truncated to vertex 2."""
        stdin_text = (
            '{"source": 2.9, "target": 9, "k": 3}\n'
            '{"source": true, "target": 9, "k": 3}\n'
            '{"source": 3.0, "target": 9, "k": 3}\n'
        )
        completed = self._run(["--dataset", "ps", "--scale", "0.08"], stdin_text)
        assert completed.returncode == 0, completed.stderr
        records = [json.loads(line) for line in completed.stdout.splitlines()]
        assert len(records) == 3
        assert not records[0]["ok"] and "integral" in records[0]["error"]
        assert records[0]["source"] == 2.9  # echoed back, not truncated
        assert not records[1]["ok"] and "boolean" in records[1]["error"]
        assert records[2]["ok"] and records[2]["source"] == 3

    def test_bad_queries_path_exits_2(self):
        completed = self._run(
            ["--dataset", "ps", "--queries", "/nonexistent/queries.jsonl"], ""
        )
        assert completed.returncode == 2
        assert "could not read queries" in completed.stderr

    def test_stdin_and_queries_file_parity(self, tmp_path):
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\na c\nc d\n", encoding="utf-8")
        workload = 'a d 3\n{"source": "b", "target": "d", "k": 2}\na zzz 2\n'
        queries_file = tmp_path / "queries.jsonl"
        queries_file.write_text(workload, encoding="utf-8")

        from_stdin = self._run(["--edges", str(edges)], workload)
        from_file = self._run(
            ["--edges", str(edges), "--queries", str(queries_file)], ""
        )
        assert from_stdin.returncode == 0, from_stdin.stderr
        assert from_file.returncode == 0, from_file.stderr

        def stable(output):
            records = []
            for line in output.splitlines():
                record = json.loads(line)
                record.pop("latency_ms", None)
                records.append(record)
            return records

        assert stable(from_stdin.stdout) == stable(from_file.stdout)

    def test_all_queries_failing_translation_still_interleaves(self, tmp_path):
        """With --edges, every query failing translation must still emit
        one error record per query, in input order, with exit 0."""
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\n", encoding="utf-8")
        stdin_text = 'zzz c 2\n{"source": 2.9, "target": "c", "k": 3}\nqqq b 2\n'
        completed = self._run(["--edges", str(edges), "--stats"], stdin_text)
        assert completed.returncode == 0, completed.stderr
        records = [json.loads(line) for line in completed.stdout.splitlines()]
        assert len(records) == 3
        assert [record["ok"] for record in records] == [False, False, False]
        assert records[0]["source"] == "zzz"
        assert records[1]["source"] == 2.9
        assert records[2]["source"] == "qqq"
        stats = json.loads(completed.stderr.strip().splitlines()[-1])
        assert stats["queries_served"] == 0


class TestTelemetryOnBatchFailure:
    def test_exports_survive_run_batch_failure(self, tmp_path, monkeypatch, capsys):
        """Regression: --stats/--metrics-out/--trace-out used to be lost
        whenever engine.run_batch raised."""
        from repro.service.__main__ import main as service_main

        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\n", encoding="utf-8")
        queries = tmp_path / "queries.jsonl"
        queries.write_text("a c 2\n", encoding="utf-8")
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"

        def explode(self, *args, **kwargs):
            raise RuntimeError("batch exploded")

        monkeypatch.setattr(SPGEngine, "run_batch", explode)
        with pytest.raises(RuntimeError, match="batch exploded"):
            service_main(
                [
                    "--edges", str(edges),
                    "--queries", str(queries),
                    "--stats",
                    "--metrics-out", str(metrics),
                    "--trace-out", str(trace),
                ]
            )

        captured = capsys.readouterr()
        stats_line = captured.err.strip().splitlines()[0]
        assert json.loads(stats_line)["queries_served"] == 0
        assert metrics.exists()
        assert "repro_queries_served_total 0" in metrics.read_text(encoding="utf-8")
        assert trace.exists()  # no spans recorded, but the export ran
