"""Differential harness for the flat explicit-stack verification path.

The CSR/explicit-stack rewrite of :mod:`repro.core.verification` is held
answer-identical to the retained dict/recursive oracle
(:mod:`repro.core.verification_reference`) the same way the earlier phases
are held to their ``*_reference`` twins: confirmed-edge-set identity on
randomized graphs across ``k in {5..9}``, every distance strategy, with
and without the Section 5.3 ordering, and through every executor backend
(serial / thread / process / sharded) of the serving engines.

It also pins the behaviours the rewrite changed on purpose:

* the Section 5.3 ordering is a pure function of the upper-bound graph —
  shuffled adjacency lists produce identical ordered slices, identical
  answers and identical work counters (the old closure keys inherited
  whatever order iteration yielded);
* ``VerificationStats`` counters are backend-independent: the same batch
  records the same ``edges_checked`` / ``edges_confirmed`` / ``expansions``
  spans on every engine;
* the ``k < 5`` early-exit still records a (zero-work) verification span;
* scratch reuse: epoch invalidation across successive queries, buffer
  growth across graphs, and the pooled ``verification_scratch_*`` counters
  on every backend.
"""

from __future__ import annotations

import copy
import random

import pytest

from repro.core import verification_reference
from repro.core.distances import DISTANCE_STRATEGIES, compute_distance_index
from repro.core.essential import propagate_backward, propagate_forward
from repro.core.eve import EVE, QueryScratch
from repro.core.labeling import UpperBoundGraph, compute_upper_bound
from repro.core.verification import (
    VerificationScratch,
    VerificationStats,
    prepare_verification,
    verify_undetermined_edges,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.service import SPGEngine
from repro.service.shard import ShardedSPGEngine
from repro.telemetry import Tracer


def random_graph(seed: int, num_vertices: int = 16, degree: float = 2.6) -> DiGraph:
    return erdos_renyi(num_vertices, degree, seed=seed, name=f"flat-verify-{seed}")


def build_upper(graph, s, t, k, strategy="adaptive") -> UpperBoundGraph:
    index = compute_distance_index(graph, s, t, k, strategy)
    forward = propagate_forward(graph, s, t, k, distances=index)
    backward = propagate_backward(graph, s, t, k, distances=index)
    return compute_upper_bound(graph, s, t, k, index, forward, backward)


def reference_answer(upper: UpperBoundGraph, ordered: bool):
    """The oracle's confirmed set, on a private copy (ordering mutates)."""
    upper = copy.deepcopy(upper)
    if ordered:
        verification_reference.order_adjacency_reference(upper)
    return verification_reference.verify_undetermined_edges_reference(upper)


def slice_lists(prepared):
    """The materialised (out, in) adjacency lists, decoded from the slices."""
    scratch = prepared.scratch
    out, inn = {}, {}
    for vertex in scratch.touched:
        begin, stop = scratch.out_start[vertex], scratch.out_end[vertex]
        out[vertex] = scratch.out_targets[begin:stop]
        begin, stop = scratch.in_start[vertex], scratch.in_end[vertex]
        inn[vertex] = scratch.in_targets[begin:stop]
    return out, inn


# ----------------------------------------------------------------------
# The differential harness: flat vs oracle confirmed-edge sets
# ----------------------------------------------------------------------
class TestFlatMatchesReference:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [5, 6, 7, 8, 9])
    def test_confirmed_set_identity(self, seed, k):
        """One shared scratch across every (seed, k) cell, both orderings."""
        graph = random_graph(seed)
        rng = random.Random(seed * 37 + k)
        s, t = rng.sample(range(graph.num_vertices), 2)
        upper = build_upper(graph, s, t, k)
        scratch = VerificationScratch()
        for ordered in (False, True):
            prepared = prepare_verification(upper, scratch=scratch)
            if ordered:
                prepared.apply_search_ordering()
            assert prepared.verify() == reference_answer(upper, ordered), (
                seed,
                s,
                t,
                k,
                ordered,
            )

    @pytest.mark.parametrize("strategy", DISTANCE_STRATEGIES)
    @pytest.mark.parametrize("seed", range(4))
    def test_all_distance_strategies(self, strategy, seed):
        graph = random_graph(seed, num_vertices=20, degree=3.0)
        rng = random.Random(seed + 11)
        s, t = rng.sample(range(graph.num_vertices), 2)
        scratch = VerificationScratch()
        for k in (5, 7, 9):
            upper = build_upper(graph, s, t, k, strategy=strategy)
            got = verify_undetermined_edges(
                upper, scratch=scratch, search_ordering=True
            )
            assert got == reference_answer(upper, ordered=k >= 6), (strategy, seed, k)

    @pytest.mark.parametrize("seed", range(4))
    def test_wrapper_defaults_match_prepared_path(self, seed):
        """verify_undetermined_edges == prepare + ordering + verify."""
        graph = random_graph(seed, num_vertices=18, degree=2.8)
        upper = build_upper(graph, 0, graph.num_vertices - 1, 7)
        plain = verify_undetermined_edges(upper)
        ordered = verify_undetermined_edges(upper, search_ordering=True)
        prepared = prepare_verification(upper)
        prepared.apply_search_ordering()
        assert plain == ordered == prepared.verify()

    def test_incremental_confirmed_count_matches_answer(self):
        """edges_confirmed counts exactly the undetermined edges that settle,
        on both kernels (the rewrite made the count incremental)."""
        graph = random_graph(13, num_vertices=24, degree=3.2)
        for k in (5, 6, 8):
            upper = build_upper(graph, 1, 22, k)
            stats = VerificationStats()
            answer = verify_undetermined_edges(
                upper, stats=stats, search_ordering=True
            )
            assert stats.edges_confirmed == len(answer) - len(upper.definite_edges)
            ref_stats = VerificationStats()
            ref_upper = copy.deepcopy(upper)
            if k >= 6:
                verification_reference.order_adjacency_reference(ref_upper)
            ref_answer = verification_reference.verify_undetermined_edges_reference(
                ref_upper, stats=ref_stats
            )
            assert answer == ref_answer
            assert stats.edges_confirmed == ref_stats.edges_confirmed
            assert stats.edges_checked == ref_stats.edges_checked


# ----------------------------------------------------------------------
# Section 5.3 ordering: deterministic, shuffle-independent, oracle-equal
# ----------------------------------------------------------------------
class TestOrderingDeterminism:
    def _shuffled_copy(self, upper: UpperBoundGraph, seed: int) -> UpperBoundGraph:
        shuffled = copy.deepcopy(upper)
        rng = random.Random(seed)
        for neighbors in shuffled.out_adjacency.values():
            rng.shuffle(neighbors)
        for neighbors in shuffled.in_adjacency.values():
            rng.shuffle(neighbors)
        return shuffled

    @pytest.mark.parametrize("k", [6, 7, 9])
    def test_shuffled_adjacency_yields_identical_slices_and_stats(self, k):
        """The ordered slices, the answer and every work counter are a pure
        function of the upper-bound graph, not of adjacency-list order."""
        graph = random_graph(23, num_vertices=22, degree=3.0)
        upper = build_upper(graph, 0, 21, k)
        baseline_prepared = prepare_verification(upper)
        baseline_prepared.apply_search_ordering()
        baseline_slices = slice_lists(baseline_prepared)
        baseline_stats = VerificationStats()
        baseline = baseline_prepared.verify(stats=baseline_stats)
        for seed in range(5):
            shuffled = self._shuffled_copy(upper, seed)
            prepared = prepare_verification(shuffled)
            prepared.apply_search_ordering()
            assert slice_lists(prepared) == baseline_slices, (k, seed)
            stats = VerificationStats()
            assert prepared.verify(stats=stats) == baseline, (k, seed)
            assert stats == baseline_stats, (k, seed)

    @pytest.mark.parametrize("k", [6, 8])
    def test_flat_ordering_equals_reference_ordering(self, k):
        """apply_search_ordering sorts the slices into exactly the order
        order_adjacency_reference gives the dicts (same keys, same ties)."""
        graph = random_graph(29, num_vertices=20, degree=3.0)
        upper = build_upper(graph, 2, 17, k)
        prepared = prepare_verification(self._shuffled_copy(upper, 3))
        prepared.apply_search_ordering()
        out_slices, in_slices = slice_lists(prepared)
        ordered = copy.deepcopy(upper)
        verification_reference.order_adjacency_reference(ordered)
        for vertex, neighbors in ordered.out_adjacency.items():
            assert out_slices.get(vertex, []) == neighbors, ("out", vertex)
        for vertex, neighbors in ordered.in_adjacency.items():
            assert in_slices.get(vertex, []) == neighbors, ("in", vertex)


# ----------------------------------------------------------------------
# Scratch reuse and epoch invalidation
# ----------------------------------------------------------------------
class TestVerificationScratch:
    def test_epoch_invalidation_across_queries(self):
        """A reused scratch must not leak slices or marks across queries."""
        scratch = VerificationScratch()
        big = random_graph(31, num_vertices=40, degree=3.0)
        small = random_graph(32, num_vertices=10, degree=2.0)
        for graph, (s, t) in ((big, (0, 39)), (small, (0, 9)), (big, (1, 38))):
            for k in (5, 7):
                upper = build_upper(graph, s, t, k)
                got = verify_undetermined_edges(
                    upper, scratch=scratch, search_ordering=True
                )
                assert got == reference_answer(upper, ordered=k >= 6)

    def test_scratch_grows_across_graphs(self):
        scratch = VerificationScratch()
        small = random_graph(33, num_vertices=8, degree=2.0)
        upper = build_upper(small, 0, 7, 7)
        verify_undetermined_edges(upper, scratch=scratch, search_ordering=True)
        grown = scratch.capacity
        big = random_graph(34, num_vertices=60, degree=2.5)
        upper = build_upper(big, 0, 59, 7)
        verify_undetermined_edges(upper, scratch=scratch, search_ordering=True)
        assert scratch.capacity >= grown
        assert scratch.capacity >= max(
            list(upper.out_adjacency) + list(upper.in_adjacency), default=0
        )

    def test_k5_skips_slice_materialisation(self):
        """At k = 5 the search never scans adjacency, so preparation skips
        the CSR copy and the ordering pass is a no-op."""
        graph = random_graph(35, num_vertices=24, degree=3.5)
        upper = build_upper(graph, 0, 23, 5)
        assert upper.undetermined_edges, "want a non-trivial k=5 upper"
        prepared = prepare_verification(upper)
        assert prepared.active and not prepared.scanning
        assert not prepared.scratch.touched
        prepared.apply_search_ordering()
        assert prepared.arr_epoch == 0 and prepared.dep_epoch == 0
        assert prepared.verify() == reference_answer(upper, ordered=False)


# ----------------------------------------------------------------------
# Backend independence: counters, spans and pooled-scratch accounting
# ----------------------------------------------------------------------
def _verification_span_profile(graph, batch, make_engine):
    """Sorted (edges_checked, edges_confirmed, expansions) across a batch."""
    tracer = Tracer()
    with make_engine(graph) as engine:
        engine.tracer = tracer
        report = engine.run_batch(batch)
        assert report.num_ok == len(batch)
        stats = engine.stats_snapshot()
    spans = [
        (
            event.attributes["edges_checked"],
            event.attributes["edges_confirmed"],
            event.attributes["expansions"],
        )
        for event in tracer.events()
        if event.name == "phase.verification"
    ]
    return sorted(spans), stats


class TestBackendIndependence:
    BACKENDS = ["serial", "thread", "process", "sharded"]

    @staticmethod
    def _engine_factory(backend):
        if backend == "sharded":
            return lambda graph: ShardedSPGEngine(
                graph,
                num_shards=3,
                cache_size=0,
                max_workers=2,
                executor_backend="serial",
            )
        return lambda graph: SPGEngine(
            graph, cache_size=0, max_workers=2, executor_backend=backend
        )

    def test_stats_identical_on_every_backend(self):
        """The same batch records identical verification span counters on
        serial, thread, process and sharded engines."""
        graph = erdos_renyi(80, 3.0, seed=41, name="backend-verify")
        rng = random.Random(41)
        batch = [
            (*rng.sample(range(graph.num_vertices), 2), k)
            for k in (5, 6, 7, 8)
            for _ in range(3)
        ]
        profiles = {}
        for backend in self.BACKENDS:
            spans, stats = _verification_span_profile(
                graph, batch, self._engine_factory(backend)
            )
            profiles[backend] = spans
            # Pooled-scratch invariant, per backend: one bundle checkout per
            # computed query, split between allocations and reuses.
            assert (
                stats["verification_scratch_allocations"]
                + stats["verification_scratch_reuses"]
                == stats["cache_misses"]
            ), backend
            assert stats["verification_scratch_allocations"] >= 1, backend
        serial = profiles["serial"]
        assert any(checked > 0 for checked, _, _ in serial)
        for backend in self.BACKENDS[1:]:
            assert profiles[backend] == serial, backend

    def test_small_k_early_exit_records_zero_work_span(self):
        """k < 5 skips the search but still records a verification span with
        all-zero counters, so phase coverage stays complete."""
        graph = random_graph(43, num_vertices=20, degree=2.5)
        tracer = Tracer()
        eve = EVE(graph)
        eve.query(0, 19, 4, tracer=tracer, scratch=QueryScratch())
        spans = [
            event for event in tracer.events() if event.name == "phase.verification"
        ]
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["edges_checked"] == 0
        assert attrs["edges_confirmed"] == 0
        assert attrs["expansions"] == 0

    def test_single_worker_batch_allocates_one_scratch(self):
        """Zero per-query verification allocation: one worker, one bundle."""
        graph = random_graph(44, num_vertices=40, degree=2.5)
        queries = [(s, 39, 5 + s % 3) for s in range(8)]
        with SPGEngine(graph, cache_size=0, max_workers=1) as engine:
            report = engine.run_batch(queries)
            assert report.num_ok == len(queries)
            stats = engine.stats_snapshot()
        assert stats["verification_scratch_allocations"] == 1
        assert stats["verification_scratch_reuses"] == len(queries) - 1
