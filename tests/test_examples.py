"""Smoke tests: every example script must run end to end and print results."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    """Run one example in a subprocess and return its stdout."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return completed.stdout


def test_examples_directory_contains_required_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "fraud_detection.py",
        "relation_visualization.py",
        "accelerate_enumeration.py",
    } <= names


def test_quickstart():
    output = run_example("quickstart.py")
    assert "simple path graph" in output
    assert "s -> c -> t" in output
    assert "digraph" in output


def test_fraud_detection():
    output = run_example("fraud_detection.py")
    assert "Flagged transaction" in output
    assert "Recall on the planted ring: 100%" in output


def test_relation_visualization_default_entities():
    output = run_example("relation_visualization.py")
    assert "Relationship graph between 'alice' and 'dave'" in output
    assert "digraph" in output


def test_relation_visualization_custom_entities():
    output = run_example("relation_visualization.py", "bob", "erin", "5")
    assert "Relationship graph between 'bob' and 'erin'" in output


def test_accelerate_enumeration():
    output = run_example("accelerate_enumeration.py")
    assert "PathEnum on the full graph" in output
    assert "EVE    -> PathEnum on SPG_k" in output


def test_batch_fraud_screening():
    output = run_example("batch_fraud_screening.py")
    assert "Screened" in output
    assert "Recall    vs planted rings" in output
    # The example serves the screening batch through SPGEngine and reports
    # the serving-layer statistics against the sequential baseline.
    assert "Serving-layer statistics" in output
    assert "cache hit rate" in output
    assert "speedup" in output
