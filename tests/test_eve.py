"""End-to-end tests of the EVE query driver."""

from __future__ import annotations

import pytest

from repro import EVE, EVEConfig, build_spg, build_upper_bound
from repro.analysis.validate import brute_force_spg
from repro.core.result import EdgeLabel
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, layered_dag, power_law_cluster


class TestFigure1:
    """The motivating example: Figure 1(a) with k = 4 (Figure 1(c))."""

    def test_spg4_matches_figure_1c(self, figure1):
        graph, builder = figure1
        vid = builder.vertex_id
        result = build_spg(graph, vid("s"), vid("t"), 4)
        expected = {
            (vid("s"), vid("c")),
            (vid("s"), vid("a")),
            (vid("a"), vid("c")),
            (vid("a"), vid("h")),
            (vid("h"), vid("b")),
            (vid("c"), vid("t")),
            (vid("c"), vid("b")),
            (vid("b"), vid("t")),
        }
        assert result.edges == expected
        assert result.exact

    def test_vertices_match_figure_1c(self, figure1):
        graph, builder = figure1
        vid = builder.vertex_id
        result = build_spg(graph, vid("s"), vid("t"), 4)
        expected_vertices = {vid(x) for x in ("s", "a", "c", "b", "h", "t")}
        assert set(result.vertices) == expected_vertices

    @pytest.mark.parametrize("k", range(1, 9))
    def test_all_k_match_brute_force(self, figure1, k):
        graph, builder = figure1
        vid = builder.vertex_id
        result = build_spg(graph, vid("s"), vid("t"), k)
        assert result.edges == brute_force_spg(graph, vid("s"), vid("t"), k)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_dense_graphs(self, seed):
        graph = erdos_renyi(12, 2.2, seed=seed)
        for k in range(1, 8):
            result = build_spg(graph, 0, 11, k)
            assert result.edges == brute_force_spg(graph, 0, 11, k), (seed, k)

    @pytest.mark.parametrize("seed", range(6))
    def test_power_law_graphs(self, seed):
        graph = power_law_cluster(14, 2, seed=seed)
        for k in (3, 5, 7):
            result = build_spg(graph, 0, 13, k)
            assert result.edges == brute_force_spg(graph, 0, 13, k), (seed, k)

    def test_layered_dag(self):
        graph = layered_dag(5, 3, forward_probability=0.7, seed=2)
        result = build_spg(graph, 0, graph.num_vertices - 1, 4)
        assert result.edges == brute_force_spg(graph, 0, graph.num_vertices - 1, 4)

    def test_unreachable_pair_gives_empty_result(self):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        result = build_spg(graph, 0, 3, 5)
        assert result.is_empty
        assert result.num_edges == 0
        assert result.exact

    def test_target_too_far_for_k(self):
        graph = DiGraph.from_edge_list([(0, 1), (1, 2), (2, 3)])
        result = build_spg(graph, 0, 3, 2)
        assert result.is_empty

    def test_direct_edge_only(self):
        graph = DiGraph(2, [(0, 1)])
        result = build_spg(graph, 0, 1, 1)
        assert result.edges == {(0, 1)}


class TestConfigurations:
    """All ablation variants must return the same exact answer."""

    CONFIGS = [
        EVEConfig(),
        EVEConfig.naive(),
        EVEConfig(distance_strategy="single"),
        EVEConfig(distance_strategy="bidirectional"),
        EVEConfig(forward_looking=False),
        EVEConfig(search_ordering=False),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"{c.distance_strategy}-fl{c.forward_looking}-so{c.search_ordering}")
    @pytest.mark.parametrize("seed", range(4))
    def test_variants_agree(self, config, seed):
        graph = erdos_renyi(12, 2.0, seed=seed)
        expected = brute_force_spg(graph, 0, 11, 6)
        result = build_spg(graph, 0, 11, 6, config=config)
        assert result.edges == expected

    def test_invalid_strategy_rejected(self):
        with pytest.raises(QueryError):
            EVEConfig(distance_strategy="warp")

    def test_with_overrides(self):
        config = EVEConfig().with_overrides(forward_looking=False)
        assert not config.forward_looking
        assert config.distance_strategy == "adaptive"

    def test_no_verify_returns_upper_bound(self):
        graph = erdos_renyi(12, 2.5, seed=9)
        upper_only = build_upper_bound(graph, 0, 11, 6)
        exact = brute_force_spg(graph, 0, 11, 6)
        assert exact <= upper_only.edges
        assert upper_only.algorithm == "EVE-upper-bound"

    def test_no_verify_is_exact_for_small_k(self):
        graph = erdos_renyi(12, 2.5, seed=9)
        upper_only = build_upper_bound(graph, 0, 11, 4)
        assert upper_only.exact
        assert upper_only.edges == brute_force_spg(graph, 0, 11, 4)


class TestQueryValidation:
    def test_same_source_and_target(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(QueryError):
            build_spg(graph, 0, 0, 3)

    def test_bad_k(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(QueryError):
            build_spg(graph, 0, 1, 0)

    def test_bad_vertex(self):
        graph = DiGraph(3, [(0, 1)])
        from repro.exceptions import VertexError

        with pytest.raises(VertexError):
            build_spg(graph, 0, 7, 3)


class TestResultMetadata:
    def test_phase_stats_are_populated(self):
        graph = erdos_renyi(30, 3.0, seed=11)
        result = build_spg(graph, 0, 29, 6)
        assert result.phases.total_seconds > 0
        breakdown = result.phases.as_dict()
        assert set(breakdown) == {
            "distance",
            "propagation",
            "upper_bound",
            "ordering",
            "verification",
            "total",
        }

    def test_labels_cover_upper_bound(self):
        graph = erdos_renyi(15, 2.0, seed=8)
        result = build_spg(graph, 0, 14, 5)
        for edge in result.upper_bound_edges:
            assert result.labels[edge] in (EdgeLabel.DEFINITE, EdgeLabel.UNDETERMINED)

    def test_space_meter_positive_for_reachable_query(self):
        graph = erdos_renyi(15, 2.5, seed=8)
        result = build_spg(graph, 0, 14, 5)
        if not result.is_empty:
            assert result.space.peak > 0

    def test_engine_reuse_across_queries(self):
        graph = erdos_renyi(20, 2.0, seed=13)
        engine = EVE(graph)
        first = engine.query(0, 19, 4)
        second = engine.query(1, 18, 4)
        assert first.edges == brute_force_spg(graph, 0, 19, 4)
        assert second.edges == brute_force_spg(graph, 1, 18, 4)

    def test_to_graph_roundtrip(self):
        graph = erdos_renyi(12, 2.0, seed=3)
        result = build_spg(graph, 0, 11, 5)
        subgraph = result.to_graph(graph)
        assert set(subgraph.edges()) == result.edges
        upper_graph = result.upper_bound_graph(graph)
        assert set(upper_graph.edges()) == result.upper_bound_edges
