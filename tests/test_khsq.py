"""Tests for the k-hop s-t subgraph queries (KHSQ / KHSQ+)."""

from __future__ import annotations

import pytest

from repro import build_spg
from repro.analysis.validate import brute_force_paths
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, path_graph
from repro.khsq import KHSQ, KHSQPlus, k_hop_subgraph


def reference_k_hop_subgraph(graph, source, target, k):
    """Edges on at least one (not necessarily simple) s-t path within k hops."""
    from repro.core.distances import bounded_bfs

    dist_s = bounded_bfs(graph, source, k)
    dist_t = bounded_bfs(graph, target, k, reverse=True)
    return {
        (u, v)
        for (u, v) in graph.edges()
        if u in dist_s and v in dist_t and dist_s[u] + 1 + dist_t[v] <= k
    }


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_matches_reference(self, seed, k):
        graph = erdos_renyi(15, 2.0, seed=seed)
        expected = reference_k_hop_subgraph(graph, 0, 14, k)
        assert KHSQ(graph).query(0, 14, k).edges == expected
        assert KHSQPlus(graph).query(0, 14, k).edges == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_khsq_and_khsq_plus_agree(self, seed):
        graph = erdos_renyi(20, 2.5, seed=seed)
        for k in (3, 5):
            assert KHSQ(graph).query(0, 19, k).edges == KHSQPlus(graph).query(0, 19, k).edges

    @pytest.mark.parametrize("seed", range(6))
    def test_contains_simple_path_graph(self, seed):
        graph = erdos_renyi(12, 2.0, seed=seed)
        for k in (3, 5, 6):
            subgraph = KHSQPlus(graph).query(0, 11, k)
            spg = build_spg(graph, 0, 11, k)
            assert spg.edges <= subgraph.edges

    def test_may_contain_non_simple_path_edges(self):
        # 0 -> 1 -> 2 -> 1 cycle feeding 1 -> 3: the edge (2, 1) only lies on
        # non-simple 0-3 paths, so G^k_st keeps it while SPG_k drops it.
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 1), (1, 3)])
        subgraph = KHSQPlus(graph).query(0, 3, 4)
        spg = build_spg(graph, 0, 3, 4)
        assert (2, 1) in subgraph.edges
        assert (2, 1) not in spg.edges

    def test_path_graph_window(self):
        graph = path_graph(6)
        result = k_hop_subgraph(graph, 0, 5, 5)
        assert result.edges == set(graph.edges())
        result_short = k_hop_subgraph(graph, 0, 5, 4)
        assert result_short.edges == set()


class TestResultObject:
    def test_to_graph(self):
        graph = path_graph(4)
        result = k_hop_subgraph(graph, 0, 3, 3)
        subgraph = result.to_graph(graph)
        assert set(subgraph.edges()) == result.edges
        assert result.num_edges == 3

    def test_timing_and_space_recorded(self):
        graph = erdos_renyi(30, 3.0, seed=2)
        result = KHSQPlus(graph).query(0, 29, 4)
        assert result.seconds >= 0.0
        assert result.space.peak > 0

    def test_optimized_flag_selects_class(self):
        graph = path_graph(4)
        assert k_hop_subgraph(graph, 0, 3, 3, optimized=True).algorithm == "KHSQ+"
        assert k_hop_subgraph(graph, 0, 3, 3, optimized=False).algorithm == "KHSQ"

    def test_validation(self):
        graph = path_graph(4)
        with pytest.raises(QueryError):
            KHSQ(graph).query(1, 1, 3)
        with pytest.raises(QueryError):
            KHSQ(graph).query(0, 3, 0)
