"""The CSR distance kernel against the retained pure-dict reference.

The flat-array refactor of :mod:`repro.core.distances` must be
answer-identical to the original dict implementation, which is kept
verbatim in :mod:`repro.core.distances_reference`.  These tests cross-check
every strategy on randomized graphs (plus the awkward corners: empty
graphs, edgeless graphs, isolated vertices, unreachable targets, depth 0)
and pin down the CSR view itself, scratch reuse, and the service-layer
scratch pool.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import distances_reference as reference
from repro.core.distances import (
    DISTANCE_STRATEGIES,
    ArrayDistanceMap,
    DistanceScratch,
    backward_distance_map,
    bounded_bfs,
    compute_distance_index,
)
from repro.core.eve import build_spg
from repro.exceptions import QueryError, VertexError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, path_graph
from repro.service import SPGEngine

# ----------------------------------------------------------------------
# Random-graph helpers
# ----------------------------------------------------------------------


def random_graph(seed: int, num_vertices: int = 30, degree: float = 2.0) -> DiGraph:
    return erdos_renyi(num_vertices, degree, seed=seed)


def sparse_graph_with_isolates(seed: int) -> DiGraph:
    """A graph whose high vertex ids are isolated (no in- or out-edges)."""
    rng = random.Random(seed)
    n = 24
    connected = range(n // 2)
    edges = [
        (rng.choice(connected), rng.choice(connected))
        for _ in range(n)
    ]
    return DiGraph(n, [(u, v) for u, v in edges if u != v], name="isolates")


def assert_index_matches(new_index, ref_index) -> None:
    """Exact structural equality between a CSR index and a reference index."""
    assert dict(new_index.from_source) == dict(ref_index.from_source)
    assert dict(new_index.to_target) == dict(ref_index.to_target)
    assert new_index.explored_vertices == ref_index.explored_vertices
    assert new_index.strategy == ref_index.strategy
    assert new_index.candidate_vertices() == ref_index.candidate_vertices()
    assert new_index.shortest_st_distance() == ref_index.shortest_st_distance()


# ----------------------------------------------------------------------
# bounded_bfs vs reference
# ----------------------------------------------------------------------
class TestBoundedBFSMatchesReference:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("reverse", [False, True])
    def test_random_graphs(self, seed, reverse):
        graph = random_graph(seed)
        for depth in (0, 1, 3, 10):
            got = bounded_bfs(graph, seed % graph.num_vertices, depth, reverse=reverse)
            want = reference.bounded_bfs(
                graph, seed % graph.num_vertices, depth, reverse=reverse
            )
            assert got == want  # ArrayDistanceMap == dict via the Mapping protocol
            assert dict(got) == want
            assert len(got) == len(want)

    def test_depth_zero_is_source_only(self):
        graph = path_graph(5)
        assert dict(bounded_bfs(graph, 2, 0)) == {2: 0}

    def test_isolated_source(self):
        graph = sparse_graph_with_isolates(3)
        isolated = graph.num_vertices - 1
        assert graph.degree(isolated) == 0
        assert dict(bounded_bfs(graph, isolated, 5)) == {isolated: 0}

    def test_allowed_restriction_matches_reference(self):
        graph = random_graph(11)
        allowed = reference.bounded_bfs(graph, 7, 3, reverse=True)
        got = bounded_bfs(graph, 0, 6, allowed=allowed, allowed_budget=6)
        want = reference.bounded_bfs(graph, 0, 6, allowed=allowed, allowed_budget=6)
        assert got == want

    def test_view_supports_mapping_protocol(self):
        graph = path_graph(4)
        view = bounded_bfs(graph, 0, 10)
        assert isinstance(view, ArrayDistanceMap)
        assert view[2] == 2
        assert 3 in view and -1 not in view and 99 not in view
        assert view.get(99, "missing") == "missing"
        assert sorted(view.items()) == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert view.to_dict() == {0: 0, 1: 1, 2: 2, 3: 3}
        with pytest.raises(KeyError):
            view[-1]

    def test_view_tolerates_non_int_keys_like_dict(self):
        view = bounded_bfs(path_graph(4), 0, 10)
        assert view.get("x") is None
        assert view.get(None, "fallback") == "fallback"
        assert "x" not in view
        with pytest.raises(KeyError):
            view["x"]


# ----------------------------------------------------------------------
# compute_distance_index vs reference (all strategies, shared backward)
# ----------------------------------------------------------------------
class TestDistanceIndexMatchesReference:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("strategy", DISTANCE_STRATEGIES)
    def test_random_graphs(self, seed, strategy):
        graph = random_graph(seed, num_vertices=40, degree=1.0 + (seed % 4))
        source, target = seed % 40, (seed * 7 + 13) % 40
        if source == target:
            target = (target + 1) % 40
        for k in (1, 2, 5, 8):
            got = compute_distance_index(graph, source, target, k, strategy=strategy)
            want = reference.compute_distance_index(
                graph, source, target, k, strategy=strategy
            )
            assert_index_matches(got, want)

    @given(
        num_vertices=st.integers(min_value=2, max_value=25),
        edges=st.lists(
            st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=120
        ),
        k=st.integers(min_value=1, max_value=9),
        strategy=st.sampled_from(DISTANCE_STRATEGIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_arbitrary_graphs(self, num_vertices, edges, k, strategy):
        graph = DiGraph(
            num_vertices,
            [(u % num_vertices, v % num_vertices) for u, v in edges],
        )
        source, target = 0, num_vertices - 1
        if source == target:
            return
        got = compute_distance_index(graph, source, target, k, strategy=strategy)
        want = reference.compute_distance_index(graph, source, target, k, strategy=strategy)
        assert_index_matches(got, want)

    @pytest.mark.parametrize("seed", range(6))
    def test_shared_backward_matches_reference(self, seed):
        graph = random_graph(seed, num_vertices=35)
        target, k = 5, 6
        shared_new = backward_distance_map(graph, target, k)
        shared_ref = reference.backward_distance_map(graph, target, k)
        assert dict(shared_new.distances) == dict(shared_ref.distances)
        assert len(shared_new) == len(shared_ref)
        for source in (1, 9, 17):
            got = compute_distance_index(
                graph, source, target, k, shared_backward=shared_new
            )
            want = reference.compute_distance_index(
                graph, source, target, k, shared_backward=shared_ref
            )
            assert_index_matches(got, want)

    def test_shared_backward_from_reference_dict_accepted(self):
        """The CSR forward pass also accepts a plain-dict shared map."""
        graph = random_graph(4)
        shared_ref = reference.backward_distance_map(graph, 3, 5)
        got = compute_distance_index(graph, 0, 3, 5, shared_backward=shared_ref)
        want = reference.compute_distance_index(graph, 0, 3, 5, shared_backward=shared_ref)
        assert_index_matches(got, want)

    def test_unreachable_target(self):
        graph = DiGraph(6, [(0, 1), (1, 2), (4, 5)])
        for strategy in DISTANCE_STRATEGIES:
            got = compute_distance_index(graph, 0, 5, 4, strategy=strategy)
            want = reference.compute_distance_index(graph, 0, 5, 4, strategy=strategy)
            assert_index_matches(got, want)
            assert got.shortest_st_distance() == float("inf")

    def test_edgeless_graph(self):
        graph = DiGraph.empty(4)
        got = compute_distance_index(graph, 0, 3, 3)
        want = reference.compute_distance_index(graph, 0, 3, 3)
        assert_index_matches(got, want)
        assert dict(got.from_source) == {0: 0}

    def test_empty_graph_rejected_like_reference(self):
        graph = DiGraph.empty(0)
        with pytest.raises(VertexError):
            compute_distance_index(graph, 0, 1, 2)
        with pytest.raises(VertexError):
            reference.compute_distance_index(graph, 0, 1, 2)

    def test_k_zero_rejected_like_reference(self):
        graph = path_graph(3)
        with pytest.raises(QueryError):
            compute_distance_index(graph, 0, 2, 0)
        with pytest.raises(QueryError):
            reference.compute_distance_index(graph, 0, 2, 0)
        with pytest.raises(QueryError):
            backward_distance_map(graph, 2, 0)


# ----------------------------------------------------------------------
# Scratch reuse
# ----------------------------------------------------------------------
class TestScratchReuse:
    def test_one_scratch_many_queries(self):
        graph = random_graph(2, num_vertices=50, degree=2.5)
        scratch = DistanceScratch()
        rng = random.Random(0)
        for _ in range(25):
            s, t = rng.sample(range(50), 2)
            k = rng.randint(1, 7)
            strategy = rng.choice(DISTANCE_STRATEGIES)
            got = compute_distance_index(graph, s, t, k, strategy=strategy, scratch=scratch)
            want = reference.compute_distance_index(graph, s, t, k, strategy=strategy)
            assert_index_matches(got, want)

    def test_scratch_grows_across_graphs(self):
        small = path_graph(4)
        big = random_graph(1, num_vertices=80)
        scratch = DistanceScratch()
        first = compute_distance_index(small, 0, 3, 3, scratch=scratch)
        assert dict(first.from_source) == {0: 0, 1: 1, 2: 2, 3: 3}
        assert scratch.capacity == 4
        second = compute_distance_index(big, 0, 79, 6, scratch=scratch)
        want = reference.compute_distance_index(big, 0, 79, 6)
        assert_index_matches(second, want)
        assert scratch.capacity == 80

    def test_eve_answers_identical_with_scratch(self):
        graph = random_graph(9, num_vertices=40, degree=2.0)
        scratch = DistanceScratch()
        from repro.core.eve import EVE

        engine = EVE(graph)
        for s, t, k in [(0, 39, 5), (3, 11, 6), (0, 39, 5)]:
            with_scratch = engine.query(s, t, k, scratch=scratch)
            cold = build_spg(graph, s, t, k)
            assert with_scratch.edges == cold.edges
            assert with_scratch.exact and cold.exact


# ----------------------------------------------------------------------
# CSR views on DiGraph
# ----------------------------------------------------------------------
class TestCSRViews:
    @pytest.mark.parametrize("seed", range(5))
    def test_csr_round_trips_edge_list(self, seed):
        graph = random_graph(seed)
        offsets, targets = graph.csr()
        rebuilt = sorted(
            (u, int(v))
            for u in graph.vertices()
            for v in targets[offsets[u]:offsets[u + 1]]
        )
        assert rebuilt == graph.to_edge_list()

    @pytest.mark.parametrize("seed", range(5))
    def test_csr_reverse_round_trips_edge_list(self, seed):
        graph = random_graph(seed)
        offsets, targets = graph.csr_reverse()
        rebuilt = sorted(
            (int(u), v)
            for v in graph.vertices()
            for u in targets[offsets[v]:offsets[v + 1]]
        )
        assert rebuilt == graph.to_edge_list()

    def test_csr_is_cached(self):
        graph = random_graph(0)
        assert graph.csr() is graph.csr()
        assert graph.csr_reverse() is graph.csr_reverse()

    def test_reverse_shares_csr(self):
        graph = random_graph(0)
        forward_csr = graph.csr()
        backward_csr = graph.csr_reverse()
        reversed_graph = graph.reverse()
        assert reversed_graph.csr() is backward_csr
        assert reversed_graph.csr_reverse() is forward_csr
        assert reversed_graph.reverse() == graph

    def test_copy_shares_csr_and_equals(self):
        graph = random_graph(3)
        csr = graph.csr()
        clone = graph.copy()
        assert clone is not graph
        assert clone == graph
        assert clone.csr() is csr
        assert clone.fingerprint() == graph.fingerprint()

    def test_empty_graph_csr(self):
        graph = DiGraph.empty(0)
        offsets, targets = graph.csr()
        assert list(offsets) == [0]
        assert len(targets) == 0

    def test_max_degree_cached_and_correct(self):
        graph = DiGraph(5, [(0, 1), (0, 2), (0, 3), (4, 0), (2, 0)])
        expected = max(
            max(graph.out_degree(u), graph.in_degree(u)) for u in graph.vertices()
        )
        assert graph.max_degree() == expected == 3
        assert graph.max_degree() == 3  # cached path
        assert graph.reverse().max_degree() == 3
        assert DiGraph.empty(0).max_degree() == 0


# ----------------------------------------------------------------------
# Service scratch pool
# ----------------------------------------------------------------------
class TestServiceScratchPool:
    def test_batch_reuses_scratch_buffers(self):
        graph = random_graph(5, num_vertices=40, degree=2.0)
        engine = SPGEngine(graph, cache_size=0, max_workers=1)
        queries = [(s, 39, 4) for s in range(8)] + [(1, 20, 5), (2, 21, 5)]
        report = engine.run_batch(queries)
        assert report.num_ok == len(queries)
        stats = engine.stats_snapshot()
        # Every computed query checked out exactly one scratch ...
        assert stats["scratch_allocations"] + stats["scratch_reuses"] == stats["cache_misses"]
        # ... and with one worker a single allocation serves the whole batch.
        assert stats["scratch_allocations"] == 1
        assert stats["scratch_reuses"] == len(queries) - 1

    def test_pool_counters_and_clear(self):
        from repro.service import ScratchPool

        pool = ScratchPool()
        first = pool.acquire()
        pool.release(first)
        with pool.borrow() as again:
            assert again is first
        assert pool.allocations == 1 and pool.reuses == 1
        assert pool.snapshot()["idle"] == 1
        pool.clear()
        assert len(pool) == 0

    def test_pool_counters_track_engine_stats(self):
        """With stats attached there is one source of truth, even after reset."""
        graph = random_graph(8, num_vertices=30)
        engine = SPGEngine(graph, cache_size=0, max_workers=1)
        engine.run_batch([(0, 29, 4), (1, 29, 4), (2, 29, 4)])
        pool = engine.scratch_pool
        assert pool.allocations == engine.stats.scratch_allocations == 1
        assert pool.reuses == engine.stats.scratch_reuses == 2
        engine.stats.reset()
        assert pool.allocations == 0 and pool.reuses == 0

    def test_errored_queries_do_not_break_scratch_accounting(self):
        """Malformed/errored entries count as misses but never borrow scratch."""
        graph = random_graph(8, num_vertices=30)
        engine = SPGEngine(graph, cache_size=0, max_workers=1)
        report = engine.run_batch(
            [{"bogus": 1}, (0, 0, 3), (0, 0, 3), (0, 29, 4)]
        )
        assert report.errors == 3
        stats = engine.stats_snapshot()
        # Only the duplicate of the failed (0, 0, 3) primary skips execution;
        # executed queries (including the errored primary) borrow exactly one
        # scratch each, and allocations stay bounded by the worker count.
        assert stats["scratch_allocations"] == 1
        assert stats["scratch_allocations"] + stats["scratch_reuses"] == 2
        assert stats["cache_misses"] == 4

    def test_engine_answers_match_cold_build_spg(self):
        graph = random_graph(6, num_vertices=45, degree=2.0)
        engine = SPGEngine(graph, max_workers=2)
        queries = [(s, 44, 5) for s in range(6)] * 2
        report = engine.run_batch(queries)
        for outcome in report:
            assert outcome.ok
            assert outcome.edges == build_spg(graph, outcome.source, outcome.target, outcome.k).edges


class TestEngineConfig:
    def test_from_config_threads_strategy(self):
        from repro.service import EngineConfig

        graph = random_graph(7)
        config = EngineConfig(strategy="single", cache_size=0, max_workers=1)
        engine = SPGEngine.from_config(graph, config)
        assert engine.config.distance_strategy == "single"
        assert engine.cache is None
        result = engine.query(0, graph.num_vertices - 1, 4)
        assert result.edges == build_spg(graph, 0, graph.num_vertices - 1, 4).edges

    def test_bad_strategy_rejected(self):
        from repro.service import EngineConfig

        with pytest.raises(QueryError):
            EngineConfig(strategy="quantum").eve_config()

    @pytest.mark.parametrize("strategy", DISTANCE_STRATEGIES)
    def test_cli_strategy_flag(self, strategy, capsys):
        from repro.service.__main__ import main

        import io
        import sys

        stdin = sys.stdin
        sys.stdin = io.StringIO("0 5 4\n")
        try:
            code = main(["--dataset", "tw", "--scale", "0.05", "--strategy", strategy])
        finally:
            sys.stdin = stdin
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1 and '"ok": true' in out[0]
