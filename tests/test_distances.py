"""Tests for the bounded / bi-directional / adaptive distance engine."""

from __future__ import annotations

import pytest

from repro.core.distances import (
    DISTANCE_STRATEGIES,
    bounded_bfs,
    compute_distance_index,
)
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, grid_graph, path_graph


def reference_distances(graph: DiGraph, source: int, max_depth: int, reverse: bool = False):
    """Plain BFS reference used to validate every strategy."""
    return bounded_bfs(graph, source, max_depth, reverse=reverse)


class TestBoundedBFS:
    def test_path_graph_distances(self):
        graph = path_graph(6)
        distances = bounded_bfs(graph, 0, 10)
        assert distances == {i: i for i in range(6)}

    def test_depth_bound_is_respected(self):
        graph = path_graph(6)
        distances = bounded_bfs(graph, 0, 2)
        assert distances == {0: 0, 1: 1, 2: 2}

    def test_reverse_direction(self):
        graph = path_graph(4)
        distances = bounded_bfs(graph, 3, 10, reverse=True)
        assert distances == {3: 0, 2: 1, 1: 2, 0: 3}

    def test_allowed_restriction(self):
        graph = path_graph(5)
        allowed = {1: 0, 2: 0}  # only vertices 1 and 2 may be entered
        distances = bounded_bfs(graph, 0, 10, allowed=allowed, allowed_budget=10)
        assert set(distances) == {0, 1, 2}


class TestStrategiesAgree:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_candidate_space_distances_match_single(self, seed, k):
        graph = erdos_renyi(25, 2.0, seed=seed)
        source, target = 0, 24
        reference = compute_distance_index(graph, source, target, k, strategy="single")
        for strategy in ("bidirectional", "adaptive"):
            index = compute_distance_index(graph, source, target, k, strategy=strategy)
            # Every candidate vertex must have identical exact distances.
            for vertex in reference.candidate_vertices():
                assert index.dist_from_source(vertex) == reference.dist_from_source(vertex)
                assert index.dist_to_target(vertex) == reference.dist_to_target(vertex)
            assert index.candidate_vertices() == reference.candidate_vertices()

    @pytest.mark.parametrize("strategy", DISTANCE_STRATEGIES)
    def test_grid_shortest_st_distance(self, strategy):
        graph = grid_graph(4, 4)
        index = compute_distance_index(graph, 0, 15, 8, strategy=strategy)
        assert index.shortest_st_distance() == 6

    @pytest.mark.parametrize("strategy", DISTANCE_STRATEGIES)
    def test_unreachable_target(self, strategy):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        index = compute_distance_index(graph, 0, 3, 5, strategy=strategy)
        assert index.shortest_st_distance() == float("inf")
        assert not index.in_candidate_space(3) or index.dist_from_source(3) != float("inf")


class TestDistanceIndex:
    def test_candidate_space_membership(self):
        graph = path_graph(6)
        index = compute_distance_index(graph, 0, 5, 5)
        assert index.in_candidate_space(3)
        assert not index.in_candidate_space(5 + 0) or True  # target is a candidate
        assert index.in_candidate_space(5)

    def test_size_counts_entries(self):
        graph = path_graph(4)
        index = compute_distance_index(graph, 0, 3, 3)
        assert index.size() == len(index.from_source) + len(index.to_target)

    def test_explored_vertices_positive(self):
        graph = erdos_renyi(30, 2.0, seed=1)
        index = compute_distance_index(graph, 0, 29, 4)
        assert index.explored_vertices >= 2

    def test_adaptive_explores_no_more_than_single(self):
        graph = erdos_renyi(200, 3.0, seed=5)
        single = compute_distance_index(graph, 0, 199, 6, strategy="single")
        adaptive = compute_distance_index(graph, 0, 199, 6, strategy="adaptive")
        assert len(adaptive.from_source) <= len(single.from_source) + len(single.to_target)


class TestValidation:
    def test_bad_strategy_rejected(self):
        graph = path_graph(3)
        with pytest.raises(QueryError):
            compute_distance_index(graph, 0, 2, 3, strategy="quantum")

    def test_same_source_target_rejected(self):
        graph = path_graph(3)
        with pytest.raises(QueryError):
            compute_distance_index(graph, 1, 1, 3)

    def test_non_positive_k_rejected(self):
        graph = path_graph(3)
        with pytest.raises(QueryError):
            compute_distance_index(graph, 0, 2, 0)
