"""Property-based tests (hypothesis) of EVE's core invariants.

Random directed graphs are generated from edge lists; every property is
checked against the brute-force oracle of Definition 2.1 or against the
structural invariants proved in the paper.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EVEConfig, build_spg
from repro.analysis.validate import brute_force_spg
from repro.core.distances import compute_distance_index
from repro.core.essential import propagate_forward
from repro.core.result import EdgeLabel
from repro.graph.digraph import DiGraph
from repro.khsq.khsq import KHSQPlus

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, max_vertices: int = 9, max_edges: int = 26):
    """Random directed graphs with at least two vertices."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_edges,
        )
    )
    return DiGraph(n, edges)


@st.composite
def graph_queries(draw):
    """A graph plus a valid (s, t, k) query over it."""
    graph = draw(small_graphs())
    source = draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
    target = draw(
        st.integers(min_value=0, max_value=graph.num_vertices - 1).filter(
            lambda v: v != source
        )
    )
    k = draw(st.integers(min_value=1, max_value=7))
    return graph, source, target, k


class TestExactness:
    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_eve_matches_brute_force(self, query):
        graph, source, target, k = query
        result = build_spg(graph, source, target, k)
        assert result.edges == brute_force_spg(graph, source, target, k)

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_naive_config_matches_brute_force(self, query):
        graph, source, target, k = query
        result = build_spg(graph, source, target, k, config=EVEConfig.naive())
        assert result.edges == brute_force_spg(graph, source, target, k)


class TestStructuralInvariants:
    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_answer_is_subset_of_upper_bound(self, query):
        graph, source, target, k = query
        result = build_spg(graph, source, target, k)
        assert result.edges <= result.upper_bound_edges

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_upper_bound_subset_of_khsq_subgraph(self, query):
        """SPGu_k is always contained in G^k_st (distance filter is weaker)."""
        graph, source, target, k = query
        result = build_spg(graph, source, target, k)
        subgraph = KHSQPlus(graph).query(source, target, k)
        assert result.upper_bound_edges <= subgraph.edges

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_definite_edges_belong_to_answer(self, query):
        graph, source, target, k = query
        result = build_spg(graph, source, target, k)
        definite = {
            edge for edge, label in result.labels.items() if label is EdgeLabel.DEFINITE
        }
        assert definite <= result.edges

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_monotone_in_k(self, query):
        """SPG_k grows monotonically with the hop budget."""
        graph, source, target, k = query
        smaller = build_spg(graph, source, target, k).edges
        larger = build_spg(graph, source, target, k + 1).edges
        assert smaller <= larger

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_upper_bound_exact_below_five(self, query):
        graph, source, target, k = query
        k = min(k, 4)
        result = build_spg(graph, source, target, k)
        assert result.upper_bound_edges == result.edges

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_every_answer_edge_lies_on_a_valid_path(self, query):
        """Soundness: each returned edge is on some k-hop s-t simple path."""
        graph, source, target, k = query
        result = build_spg(graph, source, target, k)
        truth = brute_force_spg(graph, source, target, k)
        for edge in result.edges:
            assert edge in truth


class TestEssentialVertexInvariants:
    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_sets_shrink_with_level(self, query):
        """EV*_{l+1} is always a subset of EV*_l (more paths, smaller core)."""
        graph, source, target, k = query
        index = propagate_forward(graph, source, target, k, prune=False)
        for vertex in index.reached_vertices():
            previous = None
            for level in range(0, k):
                current = index.get(vertex, level)
                if current is None:
                    continue
                if previous is not None:
                    assert current <= previous
                previous = current

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_sets_contain_endpoints(self, query):
        graph, source, target, k = query
        index = propagate_forward(graph, source, target, k, prune=False)
        for vertex in index.reached_vertices():
            for level in range(0, k):
                ev = index.get(vertex, level)
                if ev is not None:
                    assert source in ev
                    assert vertex in ev
                    assert target not in ev or vertex == target

    @given(query=graph_queries())
    @settings(**_SETTINGS)
    def test_candidate_space_distances_exact(self, query):
        """Adaptive search distances agree with single-directional BFS."""
        graph, source, target, k = query
        single = compute_distance_index(graph, source, target, k, strategy="single")
        adaptive = compute_distance_index(graph, source, target, k, strategy="adaptive")
        for vertex in single.candidate_vertices():
            assert adaptive.dist_from_source(vertex) == single.dist_from_source(vertex)
            assert adaptive.dist_to_target(vertex) == single.dist_to_target(vertex)
