"""Tests for the asyncio HTTP front end (repro.service.http).

Covers the admission layer (token buckets, bounded queue, drain), the
request coalescer, the HTTP server itself (routing, error statuses,
framing limits, keep-alive), parity between ``POST /batch`` and the
offline CLI on the same workload, overload behaviour (shed with 429,
never 5xx, bounded queue depth), per-tenant quotas, cross-connection
coalescing, graceful drain, and the ``/metrics`` exposition.

No pytest-asyncio here: async tests run their coroutine with
``asyncio.run`` from a sync test function.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graph.io import load_graph
from repro.service.engine import QueryOutcome, SPGEngine
from repro.service.http import (
    ADMITTED,
    DRAINING,
    QUOTA,
    SHED,
    AdmissionController,
    HTTPConfig,
    HTTPConnection,
    HTTPFrontend,
    QueryCoalescer,
    TokenBucket,
    request,
)
from repro.service.stats import EngineStats
from repro.telemetry import Tracer
from repro.telemetry.prometheus import parse_exposition

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Fields of an outcome record that legitimately differ between two runs
#: of the same workload (timing and cache effects), stripped before
#: comparing HTTP output against the offline CLI.
VOLATILE_FIELDS = ("latency_ms", "cached", "reused_backward")


def _stable(record):
    return {key: value for key, value in record.items() if key not in VOLATILE_FIELDS}


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = lambda: 0.0  # noqa: E731 - fixed clock
        bucket = TokenBucket(10.0, 3.0, clock)
        assert bucket.tokens == 3.0
        assert bucket.try_acquire() and bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate_capped_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(2.0, 4.0, lambda: now[0])
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] = 1.0  # 2 tokens refilled
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] = 100.0  # refill far past burst; capacity caps it
        assert bucket.tokens == 4.0

    def test_bulk_acquire_respects_balance(self):
        bucket = TokenBucket(1.0, 5.0, lambda: 0.0)
        assert bucket.try_acquire(5.0)
        assert not bucket.try_acquire(0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.0)


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_admits_then_sheds_at_bound(self):
        stats = EngineStats()
        control = AdmissionController(max_queue_depth=2, stats=stats)
        assert control.try_admit("a") == ADMITTED
        assert control.try_admit("a") == ADMITTED
        assert control.try_admit("a") == SHED
        assert control.queue_depth == 2
        control.release()
        assert control.try_admit("a") == ADMITTED
        assert stats.http_requests_admitted == 3
        assert stats.http_requests_shed == 1
        assert stats.http_queue_depth_peak == 2

    def test_batch_cost_counts_against_bound(self):
        control = AdmissionController(max_queue_depth=5)
        assert control.try_admit("a", cost=4) == ADMITTED
        assert control.try_admit("a", cost=2) == SHED
        assert control.try_admit("a", cost=1) == ADMITTED
        control.release(4)
        control.release(1)
        assert control.queue_depth == 0

    def test_release_beyond_depth_raises(self):
        control = AdmissionController(max_queue_depth=2)
        control.try_admit("a")
        with pytest.raises(ValueError):
            control.release(2)

    def test_tenant_quota_is_per_tenant(self):
        now = [0.0]
        stats = EngineStats()
        control = AdmissionController(
            max_queue_depth=100,
            stats=stats,
            tenant_rate=1.0,
            tenant_burst=2.0,
            clock=lambda: now[0],
        )
        assert control.try_admit("alpha") == ADMITTED
        assert control.try_admit("alpha") == ADMITTED
        assert control.try_admit("alpha") == QUOTA
        assert control.try_admit("beta") == ADMITTED  # separate bucket
        now[0] = 1.0  # one token refilled for alpha
        assert control.try_admit("alpha") == ADMITTED
        assert stats.http_quota_rejections == 1

    def test_draining_rejects_before_everything(self):
        stats = EngineStats()
        control = AdmissionController(max_queue_depth=1, stats=stats)
        control.try_admit("a")
        control.begin_drain()
        assert control.try_admit("a") == DRAINING
        assert stats.http_drain_rejections == 1

    def test_wait_drained_completes_on_release(self):
        async def scenario():
            control = AdmissionController(max_queue_depth=4)
            control.try_admit("a", cost=3)
            control.begin_drain()
            assert not await control.wait_drained(0.01)
            asyncio.get_running_loop().call_soon(control.release, 3)
            assert await control.wait_drained(1.0)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Coalescer (against a fake engine: batching behaviour only)
# ----------------------------------------------------------------------
class _FakeEngine:
    def __init__(self, fail=False):
        self.batches = []
        self.fail = fail

    async def run_batch_async(self, queries):
        self.batches.append(list(queries))
        if self.fail:
            raise RuntimeError("engine exploded")
        outcomes = [
            QueryOutcome(source=s, target=t, k=k, latency_seconds=0.0)
            for s, t, k in queries
        ]
        return type("Report", (), {"outcomes": outcomes})()


class TestQueryCoalescer:
    def test_same_window_arrivals_share_one_batch(self):
        async def scenario():
            engine = _FakeEngine()
            coalescer = QueryCoalescer(engine, window_seconds=0.05, max_batch=64)
            outcomes = await asyncio.gather(
                *(coalescer.submit((i, i + 1, 3)) for i in range(5))
            )
            assert [outcome.source for outcome in outcomes] == list(range(5))
            assert coalescer.batches_flushed == 1
            assert coalescer.queries_coalesced == 5
            assert len(engine.batches) == 1 and len(engine.batches[0]) == 5
            await coalescer.aclose()

        asyncio.run(scenario())

    def test_max_batch_flushes_immediately(self):
        async def scenario():
            engine = _FakeEngine()
            coalescer = QueryCoalescer(engine, window_seconds=10.0, max_batch=2)
            outcomes = await asyncio.gather(
                *(coalescer.submit((i, i + 1, 3)) for i in range(4))
            )
            assert len(outcomes) == 4
            # A 10s window can only have been beaten by the max-batch flush.
            assert coalescer.batches_flushed == 2
            assert all(len(batch) == 2 for batch in engine.batches)
            await coalescer.aclose()

        asyncio.run(scenario())

    def test_engine_failure_fans_out_to_every_future(self):
        async def scenario():
            coalescer = QueryCoalescer(
                _FakeEngine(fail=True), window_seconds=0.01, max_batch=64
            )
            results = await asyncio.gather(
                *(coalescer.submit((i, i + 1, 3)) for i in range(3)),
                return_exceptions=True,
            )
            assert all(isinstance(result, RuntimeError) for result in results)
            await coalescer.aclose()

        asyncio.run(scenario())

    def test_submit_after_close_raises(self):
        async def scenario():
            coalescer = QueryCoalescer(_FakeEngine(), window_seconds=0.01)
            await coalescer.aclose()
            with pytest.raises(RuntimeError):
                await coalescer.submit((0, 1, 2))

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# The HTTP server, end to end
# ----------------------------------------------------------------------
def _engine(graph, **kwargs):
    kwargs.setdefault("executor_backend", "serial")
    kwargs.setdefault("cache_size", 0)
    return SPGEngine(graph, **kwargs)


async def _booted(engine, builder=None, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    frontend = HTTPFrontend(
        engine, builder=builder, config=HTTPConfig(**config_kwargs)
    )
    await frontend.start()
    return frontend


class TestHTTPFrontend:
    def test_healthz_and_metrics(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    health = await request(frontend.address, path="/healthz")
                    assert health.status == 200
                    assert health.json()["status"] == "ok"

                    metrics = await request(frontend.address, path="/metrics")
                    assert metrics.status == 200
                    assert metrics.headers["content-type"].startswith("text/plain")
                    names = {s.name for s in parse_exposition(metrics.text)}
                    assert "repro_http_requests_admitted_total" in names
                    assert "repro_http_queue_depth" in names
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_query_matches_offline_engine(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    body = json.dumps({"source": 0, "target": 7, "k": 4}).encode()
                    response = await request(
                        frontend.address, None, "POST", "/query", body=body
                    )
                    assert response.status == 200
                    served = response.json()
                finally:
                    assert await frontend.shutdown(5.0)
            with _engine(small_dense_graph) as reference_engine:
                reference = reference_engine.run_batch([(0, 7, 4)]).outcomes[0]
            assert served["ok"]
            assert sorted(map(tuple, served["edges"])) == sorted(reference.edges)

        asyncio.run(scenario())

    def test_batch_parity_with_offline_cli(self, tmp_path):
        """The HTTP /batch answers are the offline CLI's answers."""
        workload = (
            '{"source": 0, "target": 7, "k": 4}\n'
            "3 9 4\n"
            '{"source": 2.9, "target": 9, "k": 3}\n'  # translation failure
            "0 7 4\n"  # duplicate
        )
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--dataset",
                "ps",
                "--scale",
                "0.08",
                "--cache-size",
                "0",
            ],
            input=workload,
            capture_output=True,
            text=True,
            timeout=300,
            env={"PYTHONPATH": str(SRC_DIR)},
        )
        assert completed.returncode == 0, completed.stderr
        cli_records = [
            _stable(json.loads(line)) for line in completed.stdout.splitlines()
        ]

        async def scenario():
            from repro.datasets.registry import load_dataset

            graph = load_dataset("ps", scale=0.08)
            with _engine(graph) as engine:
                frontend = await _booted(engine)
                try:
                    response = await request(
                        frontend.address,
                        None,
                        "POST",
                        "/batch",
                        body=workload.encode(),
                    )
                    assert response.status == 200
                    return [_stable(record) for record in response.json_lines()]
                finally:
                    assert await frontend.shutdown(5.0)

        http_records = asyncio.run(scenario())
        assert http_records == cli_records
        assert not http_records[2].get("ok")
        assert "integral" in http_records[2]["error"]

    def test_batch_relabels_through_edge_list_builder(self, tmp_path):
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\na c\nc d\n", encoding="utf-8")
        graph, builder = load_graph(str(edges))

        async def scenario():
            with _engine(graph) as engine:
                frontend = await _booted(engine, builder=builder)
                try:
                    response = await request(
                        frontend.address,
                        None,
                        "POST",
                        "/batch",
                        body=b"a d 3\na zzz 2\n",
                    )
                    assert response.status == 200
                    return response.json_lines()
                finally:
                    assert await frontend.shutdown(5.0)

        records = asyncio.run(scenario())
        assert len(records) == 2
        assert records[0]["ok"]
        assert sorted(map(tuple, records[0]["edges"])) == [
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
            ("c", "d"),
        ]
        assert not records[1]["ok"] and "zzz" in records[1]["error"]

    def test_overload_sheds_429_never_5xx(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine, max_queue_depth=2)
                try:
                    body = json.dumps({"source": 0, "target": 7, "k": 4}).encode()
                    statuses = [
                        response.status
                        for response in await asyncio.gather(
                            *(
                                request(
                                    frontend.address, None, "POST", "/query", body=body
                                )
                                for _ in range(32)
                            )
                        )
                    ]
                finally:
                    assert await frontend.shutdown(5.0)
                return statuses, engine.stats

        statuses, stats = asyncio.run(scenario())
        assert all(status in (200, 429) for status in statuses)
        assert statuses.count(429) > 0
        assert statuses.count(200) > 0
        assert stats.http_queue_depth_peak <= 2
        assert stats.http_requests_shed == statuses.count(429)
        assert stats.http_queue_depth == 0  # everything released

    def test_tenant_quota_sheds_per_tenant(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                # 1 token burst, negligible refill: second request must
                # trip the quota while another tenant still has its token.
                frontend = await _booted(
                    engine, tenant_rate=0.001, tenant_burst=1.0
                )
                try:
                    body = json.dumps({"source": 0, "target": 7, "k": 4}).encode()

                    async def fire(tenant):
                        response = await request(
                            frontend.address,
                            None,
                            "POST",
                            "/query",
                            body=body,
                            headers={"X-Tenant": tenant},
                        )
                        return response

                    first = await fire("alpha")
                    second = await fire("alpha")
                    other = await fire("beta")
                    assert first.status == 200
                    assert second.status == 429
                    assert second.json()["reason"] == "quota"
                    assert other.status == 200
                finally:
                    assert await frontend.shutdown(5.0)
                assert engine.stats.http_quota_rejections == 1

        asyncio.run(scenario())

    def test_concurrent_queries_coalesce_into_one_batch(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(
                    engine, coalesce_window=0.1, coalesce_max_batch=64
                )
                try:
                    queries = [(0, 7, 4), (3, 9, 4), (1, 7, 4), (5, 9, 4)]
                    responses = await asyncio.gather(
                        *(
                            request(
                                frontend.address,
                                None,
                                "POST",
                                "/query",
                                body=json.dumps(
                                    {"source": s, "target": t, "k": k}
                                ).encode(),
                            )
                            for s, t, k in queries
                        )
                    )
                    assert all(r.status == 200 for r in responses)
                    assert frontend.coalescer.batches_flushed == 1
                    assert frontend.coalescer.queries_coalesced == len(queries)
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_drain_rejects_new_work_then_completes(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                frontend.admission.begin_drain()
                try:
                    body = json.dumps({"source": 0, "target": 7, "k": 4}).encode()
                    rejected = await request(
                        frontend.address, None, "POST", "/query", body=body
                    )
                    assert rejected.status == 503
                    assert rejected.headers.get("retry-after") == "1"
                    health = await request(frontend.address, path="/healthz")
                    assert health.status == 503
                finally:
                    assert await frontend.shutdown(5.0)
                assert engine.stats.http_drain_rejections >= 1

        asyncio.run(scenario())

    def test_error_statuses(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine, max_body_bytes=64)
                try:
                    address = frontend.address
                    assert (await request(address, path="/nope")).status == 404
                    assert (await request(address, path="/query")).status == 405
                    bad = await request(
                        address, None, "POST", "/query", body=b"not json"
                    )
                    assert bad.status == 400
                    malformed = await request(
                        address, None, "POST", "/query", body=b'{"source": 0}'
                    )
                    assert malformed.status == 400
                    oversized = await request(
                        address, None, "POST", "/batch", body=b"0 1 2\n" * 64
                    )
                    assert oversized.status == 413
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_keep_alive_serves_sequential_requests(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    async with HTTPConnection(*frontend.address) as connection:
                        for source in (0, 1, 2):
                            response = await connection.request(
                                "POST",
                                "/query",
                                body=json.dumps(
                                    {"source": source, "target": 7, "k": 3}
                                ).encode(),
                            )
                            assert response.status == 200
                        health = await connection.request("GET", "/healthz")
                        assert health.status == 200
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_request_spans_recorded_when_tracing(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                engine.tracer = Tracer()
                frontend = await _booted(engine)
                try:
                    await request(frontend.address, path="/healthz")
                    body = json.dumps({"source": 0, "target": 7, "k": 4}).encode()
                    await request(frontend.address, None, "POST", "/query", body=body)
                finally:
                    assert await frontend.shutdown(5.0)
                spans = [
                    event
                    for event in engine.tracer.events()
                    if event.name == "http.request"
                ]
                assert len(spans) == 2
                by_path = {span.attributes["path"]: span for span in spans}
                assert by_path["/healthz"].attributes["status"] == 200
                assert by_path["/query"].attributes["method"] == "POST"
                assert by_path["/query"].attributes["tenant"] == "default"

        asyncio.run(scenario())

    def test_empty_batch_returns_empty_body(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    response = await request(
                        frontend.address, None, "POST", "/batch", body=b"\n# nope\n"
                    )
                    assert response.status == 200
                    assert response.json_lines() == []
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestHTTPConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coalesce_window": -0.1},
            {"coalesce_max_batch": 0},
            {"max_queue_depth": 0},
            {"tenant_rate": 0.0},
            {"tenant_burst": -1.0},
            {"stream_batch_size": 0},
            {"drain_timeout": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HTTPConfig(**kwargs)

    def test_tenant_burst_defaults_to_one_second_of_rate(self):
        assert HTTPConfig(tenant_rate=25.0).resolved_tenant_burst() == 25.0
        assert HTTPConfig(tenant_rate=0.5).resolved_tenant_burst() == 1.0
        assert HTTPConfig().resolved_tenant_burst() is None
        assert HTTPConfig(tenant_rate=10.0, tenant_burst=3.0).resolved_tenant_burst() == 3.0


# ----------------------------------------------------------------------
# The stats side of admission telemetry
# ----------------------------------------------------------------------
class TestAdmissionStats:
    def test_unknown_decision_raises(self):
        with pytest.raises(ValueError):
            EngineStats().record_admission("whatever")

    def test_negative_queue_depth_raises(self):
        with pytest.raises(ValueError):
            EngineStats().set_queue_depth(-1)

    def test_peak_tracks_maximum(self):
        stats = EngineStats()
        for depth in (1, 4, 2):
            stats.set_queue_depth(depth)
        assert stats.http_queue_depth == 2
        assert stats.http_queue_depth_peak == 4
        stats.reset()
        assert stats.http_queue_depth_peak == 0

    def test_prometheus_renders_admission_families(self):
        stats = EngineStats()
        stats.record_admission("admitted")
        stats.record_admission("quota")
        stats.set_queue_depth(5)
        samples = {s.name: s.value for s in parse_exposition(stats.to_prometheus())}
        assert samples["repro_http_requests_admitted_total"] == 1.0
        assert samples["repro_http_quota_rejections_total"] == 1.0
        assert samples["repro_http_queue_depth"] == 5.0
        assert samples["repro_http_queue_depth_peak"] == 5.0


def test_loadgen_smoke_passes_in_process():
    """The CI smoke leg (benchmarks/loadgen.py smoke) must hold its contract."""
    benchmarks_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    sys.path.insert(0, str(benchmarks_dir))
    try:
        import loadgen
    finally:
        sys.path.remove(str(benchmarks_dir))
    violations = asyncio.run(
        loadgen.smoke(topology="tw", scale=0.05, burst=24, max_queue_depth=2)
    )
    assert violations == []


def test_loadgen_mutation_smoke_passes_in_process():
    """The dynamic-graph CI leg (loadgen.py mutate-smoke) must hold its contract."""
    benchmarks_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    sys.path.insert(0, str(benchmarks_dir))
    try:
        import loadgen
    finally:
        sys.path.remove(str(benchmarks_dir))
    violations = asyncio.run(
        loadgen.mutation_smoke(
            topology="tw",
            scale=0.05,
            rate=30.0,
            duration=1.5,
            mutation_rounds=6,
            in_process=True,
        )
    )
    assert violations == []


# ----------------------------------------------------------------------
# POST /mutate — graph deltas under live traffic
# ----------------------------------------------------------------------
class TestMutateEndpoint:
    def test_mutation_changes_served_answers(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph, cache_size=64) as engine:
                frontend = await _booted(engine)
                try:
                    query = json.dumps({"source": 0, "target": 7, "k": 4}).encode()
                    before = (await request(
                        frontend.address, None, "POST", "/query", body=query
                    )).json()

                    body = json.dumps({"insert": [[0, 7]]}).encode()
                    response = await request(
                        frontend.address, None, "POST", "/mutate", body=body
                    )
                    assert response.status == 200
                    report = response.json()
                    assert report["epoch"] == 1
                    assert report["inserted"] == 1 and report["deleted"] == 0
                    assert report["noop"] is False

                    after = (await request(
                        frontend.address, None, "POST", "/query", body=query
                    )).json()
                    return before, after
                finally:
                    assert await frontend.shutdown(5.0)

        before, after = asyncio.run(scenario())
        assert before["ok"] and after["ok"]
        assert [0, 7] not in before["edges"]
        assert [0, 7] in after["edges"]

    def test_mutate_with_vertex_labels(self, figure1):
        graph, builder = figure1

        async def scenario():
            with _engine(graph) as engine:
                frontend = await _booted(engine, builder=builder)
                try:
                    body = json.dumps(
                        {"insert": [["s", "t"]], "delete": [["b", "a"]]}
                    ).encode()
                    response = await request(
                        frontend.address, None, "POST", "/mutate", body=body
                    )
                    assert response.status == 200
                    report = response.json()
                    assert report["inserted"] == 1 and report["deleted"] == 1

                    unknown = await request(
                        frontend.address,
                        None,
                        "POST",
                        "/mutate",
                        body=json.dumps({"insert": [["s", "zz"]]}).encode(),
                    )
                    assert unknown.status == 400
                    assert "zz" in unknown.json()["error"]
                    sid, tid = builder.vertex_id("s"), builder.vertex_id("t")
                    return (sid, tid) in engine.graph.edge_set()
                finally:
                    assert await frontend.shutdown(5.0)

        assert asyncio.run(scenario())

    def test_noop_and_idempotent_replay(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    existing = sorted(small_dense_graph.edge_set())[0]
                    body = json.dumps({"insert": [list(existing)]}).encode()
                    response = await request(
                        frontend.address, None, "POST", "/mutate", body=body
                    )
                    report = response.json()
                    assert response.status == 200
                    assert report["noop"] is True
                    assert report["skipped_inserts"] == 1
                    assert report["epoch"] == 0
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    @pytest.mark.parametrize(
        "body, fragment",
        [
            (b"not json", "invalid JSON"),
            (b"[1, 2]", "JSON object"),
            (b'{"upsert": []}', "unknown mutate keys"),
            (b'{"insert": {"0": 1}}', "JSON array"),
            (b'{"insert": [[0]]}', "pair"),
            (b'{"insert": [[0, 1]], "delete": [[0, 1]]}', "both inserts and deletes"),
            (b'{"insert": [[0, 9999]]}', "outside"),
        ],
    )
    def test_malformed_mutations_get_400(self, small_dense_graph, body, fragment):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    response = await request(
                        frontend.address, None, "POST", "/mutate", body=body
                    )
                    assert response.status == 400
                    assert fragment in response.json()["error"]
                    assert engine.graph_epoch == 0
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_get_mutate_is_405(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                try:
                    response = await request(frontend.address, path="/mutate")
                    assert response.status == 405
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_mutate_rejected_during_drain(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph) as engine:
                frontend = await _booted(engine)
                frontend.admission.begin_drain()
                try:
                    body = json.dumps({"insert": [[0, 7]]}).encode()
                    response = await request(
                        frontend.address, None, "POST", "/mutate", body=body
                    )
                    assert response.status == 503
                    assert engine.graph_epoch == 0
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())

    def test_metrics_expose_delta_counters(self, small_dense_graph):
        async def scenario():
            with _engine(small_dense_graph, cache_size=64) as engine:
                frontend = await _booted(engine)
                try:
                    body = json.dumps({"insert": [[0, 7]], "delete": []}).encode()
                    assert (
                        await request(
                            frontend.address, None, "POST", "/mutate", body=body
                        )
                    ).status == 200
                    metrics = await request(frontend.address, path="/metrics")
                    samples = {
                        s.name: s.value for s in parse_exposition(metrics.text)
                    }
                    assert samples["repro_deltas_applied_total"] == 1.0
                    assert samples["repro_delta_edges_inserted_total"] == 1.0
                    assert samples["repro_graph_epoch"] == 1.0
                finally:
                    assert await frontend.shutdown(5.0)

        asyncio.run(scenario())
