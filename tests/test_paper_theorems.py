"""Executable checks of the paper's theorems and worked examples.

These tests pin the implementation to the formal statements of the paper
(beyond end-to-end correctness): Observation 2.1, Lemma 3.3, Theorems 3.4,
3.5, 4.3, 4.8, 4.9, 5.6/5.8 and the FPT reduction of Theorem 2.7.
"""

from __future__ import annotations

import itertools

import pytest

from repro import build_spg, build_upper_bound
from repro.analysis.validate import brute_force_paths, brute_force_spg
from repro.core.distances import compute_distance_index
from repro.core.essential import propagate_backward, propagate_forward
from repro.fpt import fpt_spg
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi


def essential_from_definition(graph, start, end, level, excluded):
    """EV*_l straight from Definition 3.1 (simple paths only)."""
    sets = [
        set(path)
        for path in brute_force_paths(graph, start, end, level)
        if excluded not in path
    ]
    if not sets:
        return None
    result = sets[0]
    for s in sets[1:]:
        result &= s
    return frozenset(result)


class TestObservation21:
    """e(u,v) in SPG_k iff disjoint prefix/suffix simple paths exist."""

    @pytest.mark.parametrize("seed", range(4))
    def test_edge_membership_characterisation(self, seed):
        graph = erdos_renyi(9, 2.0, seed=seed)
        source, target, k = 0, 8, 5
        answer = brute_force_spg(graph, source, target, k)
        for u, v in graph.edges():
            prefixes = [
                p for p in brute_force_paths(graph, source, u, k - 1)
                if target not in p
            ] if u != source else [(source,)]
            suffixes = [
                p for p in brute_force_paths(graph, v, target, k - 1)
                if source not in p
            ] if v != target else [(target,)]
            exists = any(
                len(p) - 1 + len(q) - 1 + 1 <= k and not (set(p) & set(q))
                for p in prefixes
                for q in suffixes
            )
            assert exists == ((u, v) in answer), (u, v)


class TestTheorem35:
    """Path-based and simple-path-based essential vertices coincide."""

    @pytest.mark.parametrize("seed", range(5))
    def test_propagation_equals_definition(self, seed):
        graph = erdos_renyi(8, 2.0, seed=seed)
        source, target, k = 0, 7, 5
        forward = propagate_forward(graph, source, target, k, prune=False)
        for vertex in graph.vertices():
            if vertex in (source, target):
                continue
            for level in range(1, k):
                assert forward.get(vertex, level) == essential_from_definition(
                    graph, source, vertex, level, target
                )


class TestLemma33AndTheorem34:
    """Essential-vertex disjointness is necessary (not sufficient) for membership."""

    @pytest.mark.parametrize("seed", range(5))
    def test_failing_edge_filter_is_sound(self, seed):
        graph = erdos_renyi(9, 2.2, seed=seed)
        source, target, k = 0, 8, 6
        forward = propagate_forward(graph, source, target, k, prune=False)
        backward = propagate_backward(graph, source, target, k, prune=False)
        answer = brute_force_spg(graph, source, target, k)
        for u, v in answer:
            # Lemma 3.3: some (k_f, k_b) pair must exist with disjoint sets.
            found = False
            for k_forward in range(0, k):
                ev_forward = forward.get(u, k_forward)
                if ev_forward is None:
                    continue
                for k_backward in range(0, k - k_forward):
                    ev_backward = backward.get(v, k_backward)
                    if ev_backward is None:
                        continue
                    if not (ev_forward & ev_backward):
                        found = True
                        break
                if found:
                    break
            assert found, (u, v)

    def test_counterexample_of_lemma_33(self, figure1):
        """Edge e(b, a) satisfies the disjointness test at k=7 yet is not in SPG_7."""
        graph, builder = figure1
        vid = builder.vertex_id
        s, t = vid("s"), vid("t")
        forward = propagate_forward(graph, s, t, 7, prune=False)
        backward = propagate_backward(graph, s, t, 7, prune=False)
        ev_sb = forward.get(vid("b"), 3)
        ev_at = backward.get(vid("a"), 2)
        assert ev_sb == {s, vid("b")}
        assert ev_at == {vid("a"), vid("c"), t}
        assert not (ev_sb & ev_at)
        assert (vid("b"), vid("a")) not in brute_force_spg(graph, s, t, 7)


class TestTheorem43:
    """Checking k_b = k - k_f - 1 subsumes all smaller k_b."""

    @pytest.mark.parametrize("seed", range(4))
    def test_largest_kb_is_enough(self, seed):
        graph = erdos_renyi(9, 2.0, seed=seed)
        source, target, k = 0, 8, 6
        backward = propagate_backward(graph, source, target, k, prune=False)
        for vertex in graph.vertices():
            for k_backward in range(1, k - 1):
                larger = backward.get(vertex, k_backward)
                smaller = backward.get(vertex, k_backward - 1)
                if smaller is None:
                    continue
                assert larger is not None
                assert larger <= smaller


class TestTheorem48And49:
    def test_upper_bound_exact_for_k_le_4(self):
        for seed in range(6):
            graph = erdos_renyi(10, 2.4, seed=seed)
            for k in (1, 2, 3, 4):
                result = build_upper_bound(graph, 0, 9, k)
                assert result.edges == brute_force_spg(graph, 0, 9, k)

    @pytest.mark.parametrize("seed", range(4))
    def test_first_and_last_two_edges_are_definite(self, seed):
        """Theorem 4.9: every path's first/last two edges carry label 2."""
        from repro.core.result import EdgeLabel

        graph = erdos_renyi(10, 2.2, seed=seed)
        source, target, k = 0, 9, 6
        result = build_spg(graph, source, target, k)
        for path in brute_force_paths(graph, source, target, k):
            edges = list(zip(path, path[1:]))
            boundary = set(edges[:2] + edges[-2:])
            for edge in boundary:
                assert result.labels[edge] is EdgeLabel.DEFINITE, (path, edge)


class TestTheorem27Reduction:
    @pytest.mark.parametrize("seed", range(2))
    def test_fpt_route_agrees_with_eve(self, seed):
        graph = erdos_renyi(7, 1.6, seed=seed)
        for k in (2, 3):
            assert fpt_spg(graph, 0, 6, k, method="exact") == build_spg(graph, 0, 6, k).edges


class TestNPHardnessGadget:
    """The FSH-style gadget: deciding via SPG whether node-disjoint paths exist."""

    def test_two_disjoint_paths_through_middle(self):
        # s -> r -> t exists through vertex-disjoint halves.
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (2, 4)])
        s, r, t = 0, 2, 4
        found = any(
            r in {v for edge in build_spg(graph, s, t, k).edges for v in edge}
            for k in range(1, graph.num_vertices)
        )
        assert found

    def test_shared_vertex_blocks_the_mapping(self):
        # Every s->r path and r->t path must reuse vertex 1 -> no homeomorphism.
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 1), (1, 4)])
        s, r, t = 0, 2, 4
        found = any(
            r in {v for edge in build_spg(graph, s, t, k).edges for v in edge}
            for k in range(1, graph.num_vertices)
        )
        assert not found
