"""Differential harness for the flat-buffer propagation + labelling path.

The CSR/flat-array rewrite of :mod:`repro.core.essential` and
:mod:`repro.core.labeling` is held answer-identical to the retained
dict/frozenset oracles (:mod:`repro.core.essential_reference`,
:mod:`repro.core.labeling_reference`) the same way the distance kernels are
held to :mod:`repro.core.distances_reference`: every vertex, every level,
every label, every boundary list, on randomized graphs across ``k``,
pruning on/off and all three distance strategies — with and without a
reused :class:`~repro.core.essential.EssentialScratch`.

This file also carries the regression tests for the bug hunt that preceded
the refactor:

* the small-``k`` labelling hole (``label_edge``'s split loop is empty for
  ``k <= 4``) is proven vacuous by cross-checking the upper bound against
  full path enumeration at ``k in {2, 3, 4}`` and asserting no
  ``UNDETERMINED`` label can ever be produced there;
* the nondeterministic ``collect_boundaries`` truncation (the ``k - 2``
  cap used to keep whichever neighbours iteration order yielded first) is
  pinned to the sorted-order semantics under adversarial adjacency
  orderings and across whole-graph vs sharded engines;
* the ``ResultCache`` counter reads that ignored the lock are hammered
  from threads;
* scratch reuse: epoch invalidation across successive queries, buffer
  growth across graphs, and the pooled-bundle counters in
  :class:`~repro.service.stats.EngineStats`.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import (
    distances,
    distances_reference,
    essential,
    essential_reference,
    labeling,
    labeling_reference,
)
from repro.core.distances import DISTANCE_STRATEGIES
from repro.core.essential import EssentialScratch
from repro.core.eve import EVE, EVEConfig, QueryScratch, build_spg
from repro.core.result import EdgeLabel
from repro.core.verification import verify_undetermined_edges
from repro.enumeration import EnumerationSPGBuilder, PathEnum
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.service import SPGEngine
from repro.service.cache import ResultCache, make_cache_key
from repro.service.shard import ShardedSPGEngine


def random_graph(seed: int, num_vertices: int = 14, degree: float = 2.2) -> DiGraph:
    return erdos_renyi(num_vertices, degree, seed=seed, name=f"flat-{seed}")


def random_query(graph: DiGraph, seed: int):
    rng = random.Random(seed)
    return rng.sample(range(graph.num_vertices), 2)


def reference_pipeline(graph, s, t, k, prune=True, strategy="adaptive"):
    """The pre-refactor pipeline, end to end, on the retained oracles."""
    index = distances_reference.compute_distance_index(graph, s, t, k, strategy)
    forward = essential_reference.propagate_forward(
        graph, s, t, k, distances=index, prune=prune
    )
    backward = essential_reference.propagate_backward(
        graph, s, t, k, distances=index, prune=prune
    )
    upper = labeling_reference.compute_upper_bound(
        graph, s, t, k, index, forward, backward
    )
    return index, forward, backward, upper


def flat_pipeline(graph, s, t, k, prune=True, strategy="adaptive", scratch=None):
    """The flat-buffer pipeline with an optionally reused scratch bundle."""
    index = distances.compute_distance_index(
        graph, s, t, k, strategy, scratch=scratch
    )
    ess = scratch.essential if scratch is not None else None
    forward = essential.propagate_forward(
        graph, s, t, k, distances=index, prune=prune, scratch=ess
    )
    backward = essential.propagate_backward(
        graph, s, t, k, distances=index, prune=prune, scratch=ess
    )
    upper = labeling.compute_upper_bound(graph, s, t, k, index, forward, backward)
    return index, forward, backward, upper


def assert_indexes_match(graph, got, want, k, context):
    for vertex in graph.vertices():
        for level in range(0, k):
            assert got.get(vertex, level) == want.get(vertex, level), (
                *context,
                vertex,
                level,
            )


def assert_uppers_match(got, want, context):
    assert got.labels == want.labels, context
    assert got.definite_edges == want.definite_edges, context
    assert got.undetermined_edges == want.undetermined_edges, context
    assert set(got.out_adjacency) == set(want.out_adjacency), context
    for vertex, neighbors in got.out_adjacency.items():
        assert sorted(neighbors) == sorted(want.out_adjacency[vertex]), context
    assert got.departures == want.departures, context
    assert got.arrivals == want.arrivals, context


# ----------------------------------------------------------------------
# The differential harness
# ----------------------------------------------------------------------
class TestFlatMatchesReference:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7, 8])
    @pytest.mark.parametrize("prune", [True, False])
    def test_propagation_labeling_and_answer(self, seed, k, prune):
        """One shared scratch across every (seed, k, prune) cell — reuse and
        correctness are exercised by the same sweep."""
        graph = random_graph(seed)
        s, t = random_query(graph, seed * 31 + k)
        scratch = QueryScratch()
        _, fwd, bwd, upper = flat_pipeline(graph, s, t, k, prune=prune, scratch=scratch)
        _, fwd_ref, bwd_ref, upper_ref = reference_pipeline(graph, s, t, k, prune=prune)
        context = (seed, s, t, k, prune)
        assert_indexes_match(graph, fwd, fwd_ref, k, context)
        assert_indexes_match(graph, bwd, bwd_ref, k, context)
        assert_uppers_match(upper, upper_ref, context)
        assert verify_undetermined_edges(upper) == verify_undetermined_edges(upper_ref)

    @pytest.mark.parametrize("strategy", DISTANCE_STRATEGIES)
    @pytest.mark.parametrize("seed", range(4))
    def test_all_distance_strategies(self, strategy, seed):
        graph = random_graph(seed, num_vertices=18, degree=2.6)
        s, t = random_query(graph, seed + 100)
        k = 6
        scratch = QueryScratch()
        _, fwd, bwd, upper = flat_pipeline(graph, s, t, k, strategy=strategy, scratch=scratch)
        _, fwd_ref, bwd_ref, upper_ref = reference_pipeline(graph, s, t, k, strategy=strategy)
        context = (strategy, seed, s, t)
        assert_indexes_match(graph, fwd, fwd_ref, k, context)
        assert_indexes_match(graph, bwd, bwd_ref, k, context)
        assert_uppers_match(upper, upper_ref, context)

    @pytest.mark.parametrize("seed", range(6))
    def test_end_to_end_eve_matches_reference_pipeline(self, seed):
        """EVE (flat path + verification) equals oracle pipeline + verification."""
        graph = random_graph(seed, num_vertices=16, degree=2.4)
        s, t = random_query(graph, seed + 50)
        for k in (4, 5, 6, 7):
            result = build_spg(graph, s, t, k)
            if result.upper_bound_edges:
                _, _, _, upper_ref = reference_pipeline(graph, s, t, k)
                assert result.edges == verify_undetermined_edges(upper_ref), (seed, k)
            assert result.exact

    def test_index_api_compat_on_figure1(self, figure1):
        """The flat index honours the reference index API contract."""
        graph, builder = figure1
        s, t = builder.vertex_id("s"), builder.vertex_id("t")
        flat = essential.propagate_forward(graph, s, t, 7, prune=False)
        ref = essential_reference.propagate_forward(graph, s, t, 7, prune=False)
        assert sorted(flat.reached_vertices()) == sorted(ref.reached_vertices())
        assert flat.stored_entries() == ref.stored_entries()
        assert flat.stored_items() == ref.stored_items()
        for vertex in graph.vertices():
            assert flat.first_level(vertex) == ref.first_level(vertex)
            assert flat.latest(vertex) == ref.latest(vertex)
            for level in range(7):
                assert flat.exists(vertex, level) == ref.exists(vertex, level)
        assert "forward" in repr(flat)

    def test_generic_fallback_accepts_reference_indexes(self):
        """labeling.compute_upper_bound also serves oracle-index callers."""
        graph = random_graph(3)
        s, t = 0, graph.num_vertices - 1
        k = 6
        index = distances.compute_distance_index(graph, s, t, k)
        fwd_ref = essential_reference.propagate_forward(graph, s, t, k, distances=index)
        bwd_ref = essential_reference.propagate_backward(graph, s, t, k, distances=index)
        via_fallback = labeling.compute_upper_bound(graph, s, t, k, index, fwd_ref, bwd_ref)
        fwd = essential.propagate_forward(graph, s, t, k, distances=index)
        bwd = essential.propagate_backward(graph, s, t, k, distances=index)
        via_flat = labeling.compute_upper_bound(graph, s, t, k, index, fwd, bwd)
        assert_uppers_match(via_flat, via_fallback, (s, t, k))


# ----------------------------------------------------------------------
# Small-k labelling: the vacuous split loop, proven against enumeration
# ----------------------------------------------------------------------
class TestSmallKLabeling:
    """``label_edge``'s split loop (``range(2, k - 2)``) is empty for
    ``k <= 4``.  That is vacuously *complete*, not a hole: every split of
    the ``k - 1`` interior hops with ``k_f >= 2`` and ``k_b >= 2`` needs
    ``k >= 5``, and the ``k_f <= 1`` / ``k_b <= 1`` splits are each settled
    conclusively by the Lemma 4.4/4.6 checks (DEFINITE, or impossible).
    These tests keep that argument honest against full enumeration.
    """

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_upper_bound_equals_enumeration(self, seed, k):
        graph = random_graph(seed, num_vertices=11, degree=2.4)
        s, t = random_query(graph, seed * 13 + k)
        oracle = EnumerationSPGBuilder(graph, PathEnum)
        exact = oracle.query(s, t, k).edges
        _, _, _, upper = flat_pipeline(graph, s, t, k)
        assert upper.edges == exact, (seed, s, t, k)
        # ... and EVE end to end (with and without verification) agrees.
        assert build_spg(graph, s, t, k).edges == exact
        assert (
            build_spg(graph, s, t, k, EVEConfig(verify=False)).edges == exact
        )

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_no_undetermined_labels_at_small_k(self, seed, k):
        """For k <= 4 every candidate edge resolves to DEFINITE or FAILING;
        an UNDETERMINED label would be silently dropped by the verification
        phase's ``k < 5`` early-out, so none may ever be produced."""
        graph = random_graph(seed, num_vertices=12, degree=2.6)
        s, t = random_query(graph, seed + 7)
        _, _, _, upper = flat_pipeline(graph, s, t, k)
        assert not upper.undetermined_edges, (seed, s, t, k)
        assert all(
            label is not EdgeLabel.UNDETERMINED for label in upper.labels.values()
        )

    @pytest.mark.parametrize("k", [3, 4])
    def test_label_edge_spec_agrees_with_fused_pass(self, k):
        """The per-edge specification and the fused kernel agree at small k."""
        graph = random_graph(21, num_vertices=12, degree=2.6)
        s, t = 0, 11
        index = distances.compute_distance_index(graph, s, t, k)
        fwd = essential.propagate_forward(graph, s, t, k, distances=index)
        bwd = essential.propagate_backward(graph, s, t, k, distances=index)
        upper = labeling.compute_upper_bound(graph, s, t, k, index, fwd, bwd)
        for (u, v), label in upper.labels.items():
            assert labeling.label_edge(u, v, s, t, k, fwd, bwd) is label


# ----------------------------------------------------------------------
# Deterministic boundary truncation
# ----------------------------------------------------------------------
class TestDeterministicBoundaries:
    def _upper_with_order(self, order):
        """A k=3 upper bound whose adjacency lists follow ``order``.

        Star: s -> {x1..x5} -> v -> t, so v is a departure with five valid
        in-neighbours and the k - 2 = 1 cap must truncate.
        """
        s, t, v = 0, 7, 6
        xs = [1, 2, 3, 4, 5]
        upper = labeling.UpperBoundGraph(source=s, target=t, k=3)
        for x in order:
            upper.definite_edges.add((s, x))
            upper.out_adjacency.setdefault(s, []).append(x)
            upper.in_adjacency.setdefault(x, []).append(s)
        for x in order:
            upper.definite_edges.add((x, v))
            upper.out_adjacency.setdefault(x, []).append(v)
            upper.in_adjacency.setdefault(v, []).append(x)
        upper.definite_edges.add((v, t))
        upper.out_adjacency.setdefault(v, []).append(t)
        upper.in_adjacency.setdefault(t, []).append(v)
        assert sorted(order) == xs
        return upper, v

    def test_truncation_is_iteration_order_independent(self):
        """The retained neighbours are the smallest ids, whatever order the
        adjacency lists were built in (dict-, CSR- or shard-order)."""
        results = []
        for seed in range(6):
            order = [1, 2, 3, 4, 5]
            random.Random(seed).shuffle(order)
            upper, v = self._upper_with_order(order)
            labeling.collect_boundaries(upper)
            results.append((dict(upper.departures), dict(upper.arrivals)))
        first = results[0]
        assert all(result == first for result in results[1:])
        # k - 2 == 1 neighbour retained, and it is the smallest id.
        assert first[0] == {6: [1]}

    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_flat_and_reference_boundaries_agree_under_shuffle(self, k):
        """collect_boundaries is a pure function of the upper-bound edge set."""
        graph = random_graph(17, num_vertices=16, degree=2.8)
        s, t = 0, 15
        _, _, _, upper = flat_pipeline(graph, s, t, k)
        shuffled = labeling.UpperBoundGraph(
            source=s,
            target=t,
            k=k,
            definite_edges=set(upper.definite_edges),
            undetermined_edges=set(upper.undetermined_edges),
            out_adjacency={u: list(vs) for u, vs in upper.out_adjacency.items()},
            in_adjacency={u: list(vs) for u, vs in upper.in_adjacency.items()},
        )
        rng = random.Random(5)
        for neighbors in shuffled.out_adjacency.values():
            rng.shuffle(neighbors)
        for neighbors in shuffled.in_adjacency.values():
            rng.shuffle(neighbors)
        labeling.collect_boundaries(shuffled)
        assert shuffled.departures == upper.departures
        assert shuffled.arrivals == upper.arrivals

    def test_whole_vs_sharded_reports_identical(self):
        """Regression for the nondeterministic truncation: a sharded engine
        (CSR/shard iteration orders) must match the whole-graph engine
        report-for-report, including on k where truncation bites."""
        graph = erdos_renyi(60, 3.0, seed=9, name="boundary-shards")
        rng = random.Random(9)
        queries = [
            (*rng.sample(range(graph.num_vertices), 2), k)
            for k in (3, 4, 5, 6, 7)
            for _ in range(4)
        ]
        with SPGEngine(graph, executor_backend="serial") as whole, ShardedSPGEngine(
            graph, num_shards=3, executor_backend="serial"
        ) as sharded:
            whole_report = whole.run_batch(queries)
            sharded_report = sharded.run_batch(queries)
        for a, b in zip(whole_report.outcomes, sharded_report.outcomes):
            assert (a.source, a.target, a.k, a.error is None) == (
                b.source,
                b.target,
                b.k,
                b.error is None,
            )
            assert a.edges == b.edges


# ----------------------------------------------------------------------
# Scratch reuse and epoch invalidation
# ----------------------------------------------------------------------
class TestEssentialScratch:
    def test_epoch_invalidation_across_queries(self):
        """A reused scratch must not leak entries of the previous query."""
        chain = DiGraph.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 4)])
        dense = random_graph(2, num_vertices=12, degree=3.0)
        scratch = EssentialScratch()
        # Query 1 reaches far down the chain ...
        first = essential.propagate_forward(chain, 0, 4, 4, prune=False, scratch=scratch)
        assert first.exists(3, 3)
        # ... query 2 on the same scratch reaches almost nothing; stale
        # entries from query 1 must be invisible.
        second = essential.propagate_forward(
            DiGraph.from_edge_list([(0, 1)], num_vertices=5), 0, 4, 4,
            prune=False, scratch=scratch,
        )
        assert second.get(1, 1) == frozenset({0, 1})
        for vertex in (2, 3):
            assert second.get(vertex, 3) is None
            assert not second.exists(vertex, 3)
            assert second.first_level(vertex) is None
        assert sorted(second.reached_vertices()) == [0, 1]
        # And a third, denser query is still oracle-identical.
        s, t = 0, 11
        third = essential.propagate_forward(dense, s, t, 6, prune=False, scratch=scratch)
        want = essential_reference.propagate_forward(dense, s, t, 6, prune=False)
        for vertex in dense.vertices():
            for level in range(6):
                assert third.get(vertex, level) == want.get(vertex, level)

    def test_scratch_grows_across_graphs(self):
        small = DiGraph.from_edge_list([(0, 1), (1, 2)])
        big = random_graph(4, num_vertices=80, degree=2.0)
        scratch = EssentialScratch()
        essential.propagate_forward(small, 0, 2, 3, scratch=scratch)
        assert scratch.capacity == 3
        index = essential.propagate_forward(big, 0, 79, 5, prune=False, scratch=scratch)
        assert scratch.capacity == 80
        want = essential_reference.propagate_forward(big, 0, 79, 5, prune=False)
        for vertex in big.vertices():
            for level in range(5):
                assert index.get(vertex, level) == want.get(vertex, level)

    def test_forward_and_backward_sides_are_independent(self):
        graph = random_graph(6, num_vertices=14, degree=2.5)
        s, t = 0, 13
        scratch = EssentialScratch()
        fwd = essential.propagate_forward(graph, s, t, 5, scratch=scratch)
        bwd = essential.propagate_backward(graph, s, t, 5, scratch=scratch)
        # Both indexes stay coherent simultaneously (separate sides).
        fwd_ref = essential_reference.propagate_forward(graph, s, t, 5)
        bwd_ref = essential_reference.propagate_backward(graph, s, t, 5)
        for vertex in graph.vertices():
            for level in range(5):
                assert fwd.get(vertex, level) == fwd_ref.get(vertex, level)
                assert bwd.get(vertex, level) == bwd_ref.get(vertex, level)

    def test_eve_reuses_query_scratch_bundle(self):
        graph = random_graph(8, num_vertices=30, degree=2.2)
        scratch = QueryScratch()
        engine = EVE(graph)
        for s, t, k in [(0, 29, 5), (3, 11, 6), (0, 29, 5), (1, 17, 7)]:
            with_scratch = engine.query(s, t, k, scratch=scratch)
            cold = build_spg(graph, s, t, k)
            assert with_scratch.edges == cold.edges
        assert scratch.essential.capacity == graph.num_vertices


# ----------------------------------------------------------------------
# Serving-layer integration: pooled bundles + new counters
# ----------------------------------------------------------------------
class TestPooledPropagationScratch:
    def test_batch_counts_propagation_scratch(self):
        graph = random_graph(5, num_vertices=40, degree=2.0)
        engine = SPGEngine(graph, cache_size=0, max_workers=1)
        queries = [(s, 39, 4) for s in range(8)] + [(1, 20, 5), (2, 21, 5)]
        report = engine.run_batch(queries)
        assert report.num_ok == len(queries)
        stats = engine.stats_snapshot()
        # One bundle checkout per computed query covers both phases ...
        assert (
            stats["propagation_scratch_allocations"]
            + stats["propagation_scratch_reuses"]
            == stats["cache_misses"]
        )
        # ... and with one worker a single allocation serves the whole batch:
        # zero per-query propagation allocation.
        assert stats["propagation_scratch_allocations"] == 1
        assert stats["propagation_scratch_reuses"] == len(queries) - 1
        assert stats["scratch_allocations"] == stats["propagation_scratch_allocations"]

    def test_stats_reset_clears_propagation_counters(self):
        graph = random_graph(5, num_vertices=20, degree=2.0)
        engine = SPGEngine(graph, cache_size=0, max_workers=1)
        engine.run_batch([(0, 19, 4), (1, 19, 4)])
        assert engine.stats.propagation_scratch_allocations == 1
        engine.stats.reset()
        assert engine.stats.propagation_scratch_allocations == 0
        assert engine.stats.propagation_scratch_reuses == 0

    def test_sharded_engine_pools_bundles_too(self):
        graph = erdos_renyi(50, 2.5, seed=3, name="sharded-scratch")
        with ShardedSPGEngine(
            graph, num_shards=2, cache_size=0, max_workers=1,
            executor_backend="serial",
        ) as engine:
            report = engine.run_batch([(s, 49, 4) for s in range(6)])
            assert report.num_ok == 6
            stats = engine.stats_snapshot()
            assert stats["propagation_scratch_allocations"] == 1
            assert stats["propagation_scratch_reuses"] == 5

    def test_pool_hands_out_query_scratch(self):
        from repro.service import ScratchPool

        pool = ScratchPool()
        with pool.borrow() as scratch:
            assert isinstance(scratch, QueryScratch)
            assert isinstance(scratch.essential, EssentialScratch)


# ----------------------------------------------------------------------
# ResultCache locking
# ----------------------------------------------------------------------
class TestResultCacheLocking:
    def test_hit_rate_and_repr_values(self):
        cache = ResultCache(max_entries=4)
        config = EVEConfig()
        key = make_cache_key(0, 1, 3, config, "fp")
        assert cache.hit_rate == 0.0
        assert cache.get(key) is None
        cache.put(key, object())
        assert cache.get(key) is not None
        assert cache.hit_rate == 0.5
        assert "hits=1" in repr(cache) and "misses=1" in repr(cache)

    def test_counter_reads_race_free_under_hammering(self):
        """hit_rate/__repr__ take the lock; hammer them against get/put."""
        cache = ResultCache(max_entries=32)
        config = EVEConfig()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    rate = cache.hit_rate
                    assert 0.0 <= rate <= 1.0
                    repr(cache)
                    cache.stats()
                except Exception as exc:  # pragma: no cover - the assertion
                    errors.append(exc)
                    return

        def writer(offset):
            for i in range(600):
                key = make_cache_key(offset, i % 40, 3, config, "fp")
                if cache.get(key) is None:
                    cache.put(key, (offset, i))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0
